// Package cpe implements the Common Platform Enumeration naming scheme
// used by the National Vulnerability Database to describe the systems a
// vulnerability affects.
//
// Two bindings are supported:
//
//   - the CPE 2.2 URI binding used by NVD 2.0 feeds,
//     e.g. "cpe:/o:openbsd:openbsd:4.2"
//   - the CPE 2.3 formatted-string binding,
//     e.g. "cpe:2.3:o:openbsd:openbsd:4.2:*:*:*:*:*:*:*"
//
// Names parse into a normalized Name value; Match implements the
// prefix-style matching relation of the CPE 2.2 specification, which is the
// relation NVD uses when it lists "vulnerable configurations".
package cpe

import (
	"fmt"
	"strings"
)

// Part identifies the top-level class of a platform: hardware, operating
// system or application.
type Part byte

// The three CPE parts. PartAny matches any part and appears only in match
// expressions, never in concrete names.
const (
	PartHardware    Part = 'h'
	PartOS          Part = 'o'
	PartApplication Part = 'a'
	PartAny         Part = '*'
)

// ParsePart converts the single-letter CPE part code.
func ParsePart(s string) (Part, error) {
	switch s {
	case "h":
		return PartHardware, nil
	case "o":
		return PartOS, nil
	case "a":
		return PartApplication, nil
	case "", "*":
		return PartAny, nil
	default:
		return 0, fmt.Errorf("cpe: unknown part %q", s)
	}
}

// String returns the single-letter code for the part.
func (p Part) String() string {
	switch p {
	case PartHardware, PartOS, PartApplication:
		return string(byte(p))
	case PartAny:
		return "*"
	default:
		return "?"
	}
}

// Name is a parsed CPE name. Empty components mean "unspecified" (ANY in
// 2.3 parlance). Only the seven 2.2 components are modeled; the extra 2.3
// fields (sw_edition, target_sw, target_hw, other) are folded into Edition
// when a 2.3 string is parsed, mirroring the 2.3→2.2 down-conversion rule.
type Name struct {
	Part     Part
	Vendor   string
	Product  string
	Version  string
	Update   string
	Edition  string
	Language string
}

// Parse parses either binding, deciding by prefix.
func Parse(s string) (Name, error) {
	switch {
	case strings.HasPrefix(s, "cpe:2.3:"):
		return Parse23(s)
	case strings.HasPrefix(s, "cpe:/"):
		return Parse22(s)
	default:
		return Name{}, fmt.Errorf("cpe: unrecognized binding in %q", s)
	}
}

// MustParse is Parse but panics on error; for static tables.
func MustParse(s string) Name {
	n, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return n
}

// Parse22 parses the CPE 2.2 URI binding, e.g. "cpe:/o:microsoft:windows_2000::sp4".
func Parse22(s string) (Name, error) {
	body, ok := strings.CutPrefix(s, "cpe:/")
	if !ok {
		return Name{}, fmt.Errorf("cpe: %q lacks cpe:/ prefix", s)
	}
	fields := strings.Split(body, ":")
	if len(fields) > 7 {
		return Name{}, fmt.Errorf("cpe: too many components in %q", s)
	}
	get := func(i int) string {
		if i < len(fields) {
			return decode22(fields[i])
		}
		return ""
	}
	part, err := ParsePart(get(0))
	if err != nil {
		return Name{}, fmt.Errorf("cpe: %q: %w", s, err)
	}
	n := Name{
		Part:     part,
		Vendor:   get(1),
		Product:  get(2),
		Version:  get(3),
		Update:   get(4),
		Edition:  get(5),
		Language: get(6),
	}
	if n.Vendor == "" && n.Product == "" {
		return Name{}, fmt.Errorf("cpe: %q has neither vendor nor product", s)
	}
	return n, nil
}

// Parse23 parses the CPE 2.3 formatted-string binding.
func Parse23(s string) (Name, error) {
	body, ok := strings.CutPrefix(s, "cpe:2.3:")
	if !ok {
		return Name{}, fmt.Errorf("cpe: %q lacks cpe:2.3: prefix", s)
	}
	fields := splitUnescaped(body, ':')
	if len(fields) != 11 {
		return Name{}, fmt.Errorf("cpe: 2.3 name %q has %d components, want 11", s, len(fields))
	}
	for i, f := range fields {
		fields[i] = decode23(f)
	}
	part, err := ParsePart(fields[0])
	if err != nil {
		return Name{}, fmt.Errorf("cpe: %q: %w", s, err)
	}
	n := Name{
		Part:     part,
		Vendor:   fields[1],
		Product:  fields[2],
		Version:  fields[3],
		Update:   fields[4],
		Edition:  fields[5],
		Language: fields[6],
	}
	// Fold the four extended attributes into Edition per the packing rule
	// used for 2.3→2.2 down-conversion, but only when any is meaningful.
	ext := fields[7:11]
	if anyConcrete(ext) {
		n.Edition = "~" + n.Edition + "~" + strings.Join(ext, "~")
	}
	return n, nil
}

func anyConcrete(fields []string) bool {
	for _, f := range fields {
		if f != "" {
			return true
		}
	}
	return false
}

// URI renders the name in the 2.2 URI binding, trimming trailing empty
// components as NVD does.
func (n Name) URI() string {
	comps := []string{
		n.Part.String(), encode22(n.Vendor), encode22(n.Product), encode22(n.Version),
		encode22(n.Update), encode22(n.Edition), encode22(n.Language),
	}
	if n.Part == PartAny {
		comps[0] = ""
	}
	last := len(comps)
	for last > 1 && comps[last-1] == "" {
		last--
	}
	return "cpe:/" + strings.Join(comps[:last], ":")
}

// String implements fmt.Stringer using the 2.2 URI binding.
func (n Name) String() string { return n.URI() }

// Formatted renders the name in the 2.3 formatted-string binding. Empty
// components render as "*" (ANY).
func (n Name) Formatted() string {
	star := func(s string) string {
		if s == "" {
			return "*"
		}
		return encode23(s)
	}
	return strings.Join([]string{
		"cpe:2.3", n.Part.String(), star(n.Vendor), star(n.Product), star(n.Version),
		star(n.Update), star(n.Edition), star(n.Language), "*", "*", "*", "*",
	}, ":")
}

// Key returns the (vendor, product) pair, which is the granularity at
// which the paper clusters platforms into OS distributions.
func (n Name) Key() (vendor, product string) { return n.Vendor, n.Product }

// IsOS reports whether the name describes an operating-system platform.
func (n Name) IsOS() bool { return n.Part == PartOS }

// Match reports whether the concrete name n is matched by the (possibly
// partial) pattern. A pattern component that is empty matches anything;
// otherwise components must be equal, except Version, where the CPE 2.2
// relation also accepts prefix matches on dotted version strings (so a
// pattern version "4" matches concrete "4.2" but not "40").
func (n Name) Match(pattern Name) bool {
	if pattern.Part != PartAny && pattern.Part != n.Part {
		return false
	}
	eq := func(pat, got string) bool { return pat == "" || pat == got }
	if !eq(pattern.Vendor, n.Vendor) || !eq(pattern.Product, n.Product) {
		return false
	}
	if !versionMatch(pattern.Version, n.Version) {
		return false
	}
	return eq(pattern.Update, n.Update) && eq(pattern.Edition, n.Edition) && eq(pattern.Language, n.Language)
}

func versionMatch(pat, got string) bool {
	if pat == "" || pat == got {
		return true
	}
	// Dotted prefix: "5" matches "5.4" and "5.4.1", not "54".
	return strings.HasPrefix(got, pat) && len(got) > len(pat) && got[len(pat)] == '.'
}

// splitUnescaped splits s on sep, honoring backslash escapes.
func splitUnescaped(s string, sep byte) []string {
	var (
		fields  []string
		cur     strings.Builder
		escaped bool
	)
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case escaped:
			cur.WriteByte('\\')
			cur.WriteByte(c)
			escaped = false
		case c == '\\':
			escaped = true
		case c == sep:
			fields = append(fields, cur.String())
			cur.Reset()
		default:
			cur.WriteByte(c)
		}
	}
	if escaped {
		cur.WriteByte('\\')
	}
	fields = append(fields, cur.String())
	return fields
}

// decode22 lowercases and percent-decodes a 2.2 component. NVD data uses
// %20-style escapes sparingly; unknown escapes are preserved literally.
func decode22(s string) string {
	s = strings.ToLower(s)
	if !strings.Contains(s, "%") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == '%' && i+2 < len(s) {
			if hi, ok1 := unhex(s[i+1]); ok1 {
				if lo, ok2 := unhex(s[i+2]); ok2 {
					b.WriteByte(hi<<4 | lo)
					i += 2
					continue
				}
			}
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

func unhex(c byte) (byte, bool) {
	switch {
	case '0' <= c && c <= '9':
		return c - '0', true
	case 'a' <= c && c <= 'f':
		return c - 'a' + 10, true
	case 'A' <= c && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}

const upperHex = "0123456789ABCDEF"

func encode22(s string) string {
	if !strings.ContainsAny(s, " %:") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 4)
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case ' ', '%', ':':
			b.WriteByte('%')
			b.WriteByte(upperHex[c>>4])
			b.WriteByte(upperHex[c&0xf])
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// decode23 removes backslash escapes and maps the 2.3 logical values: "*"
// (ANY) becomes the empty string and "-" (NA) is preserved as "-".
func decode23(s string) string {
	if s == "*" {
		return ""
	}
	if !strings.Contains(s, "\\") {
		return strings.ToLower(s)
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			i++
			b.WriteByte(s[i])
			continue
		}
		b.WriteByte(s[i])
	}
	return strings.ToLower(b.String())
}

func encode23(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case ':', '*', '?', '\\':
			b.WriteByte('\\')
			b.WriteByte(c)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}
