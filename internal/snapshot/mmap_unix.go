//go:build unix

package snapshot

import (
	"fmt"
	"math"
	"os"
	"syscall"
)

// mapFile memory-maps the file read-only. The returned release function
// unmaps it; the file descriptor itself may be closed immediately (the
// mapping persists).
func mapFile(f *os.File, size int64) ([]byte, func() error, error) {
	if size <= 0 || size > math.MaxInt {
		return nil, nil, fmt.Errorf("snapshot: cannot map %d bytes", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("snapshot: mmap: %w", err)
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
