// Package snapshot persists a digested core.Study as a versioned,
// checksummed columnar file — the ".osds" warm-start format. A file is a
// fixed 64-byte header, a section table, and 8-byte-aligned
// little-endian section payloads; on little-endian hosts a reader
// memory-maps the file and reslices the []uint64 columns in place, so a
// 100k-entry study boots in the time it takes to verify a checksum.
//
// Layout:
//
//	offset  size  field
//	0       8     magic "OSDSNAP1"
//	8       4     format version (little-endian u32)
//	12      4     section count (u32)
//	16      8     file size (u64) — truncation fails fast
//	24      4     CRC-32C of the section table
//	28      4     CRC-32C of the payload region
//	32      32    reserved (zero)
//	64      24×N  section table: {id u32, reserved u32, off u64, len u64}
//	...           payloads, each at an 8-byte-aligned offset, zero-padded
//
// Every section is required, offsets are bounds-checked before use, and
// unknown section IDs or newer format versions are refused with a clear
// error: a reader either adopts exactly the columns a writer produced or
// reports why it cannot.
package snapshot

import "encoding/json"

const (
	// magic identifies an osdiversity snapshot, version-suffixed so a
	// hypothetical incompatible rewrite can change the tail byte.
	magic = "OSDSNAP1"

	// FormatVersion is the newest format this build reads and the one it
	// writes. Readers refuse files from the future.
	FormatVersion = 1

	headerSize   = 64
	secEntrySize = 24

	// maxSections bounds the section count a reader will consider, so a
	// hostile header cannot demand a gigabyte table.
	maxSections = 256
)

// Section IDs. The writer emits all of them; the reader requires all of
// them and refuses IDs it does not know.
const (
	secMeta            = 1  // JSON Meta document
	secIDs             = 2  // u64: cve.ID packed Year<<32|Seq, year-sorted
	secYears           = 3  // i32: publication year per valid record
	secFlags           = 4  // u8: class index+1 (bits 0-2) | remote (bit 3)
	secProducts        = 5  // u16: affected-product count per record
	secPopcnt          = 6  // u16: affected-distro count per record
	secMasks           = 7  // u64: per-record distro masks, MaskWords each
	secRelOff          = 8  // i32: release-reference offsets, n+1
	secRelRefs         = 9  // u64: distro<<32 | version string index
	secRelVersions     = 10 // string table: u32 count, then u32 len + bytes
	secInvFlags        = 11 // u8: validity index per invalid record
	secInvMasks        = 12 // u64: invalid-record masks
	secDistroPost      = 13 // u64: per-distro posting bitsets, concatenated
	secClassPost       = 14 // u64: four class posting bitsets
	secRemotePost      = 15 // u64: remote posting bitset
	secYearStart       = 16 // i64: year segment offsets (empty when no records)
	secMulti           = 17 // i32: indices of records affecting >= 2 distros
	secMultiFlags      = 18 // u8: flags of those records
	secMultiPairOff    = 19 // i32: pair-arena offsets, len(multi)+1
	secMultiPairs      = 20 // i32: pair indices
	secInvDistroPost   = 21 // u64: per-distro postings over invalid records
	secInvValidityPost = 22 // u64: three validity postings over invalid records
)

// sectionName names a section ID for error messages.
func sectionName(id uint32) string {
	names := map[uint32]string{
		secMeta: "meta", secIDs: "ids", secYears: "years", secFlags: "flags",
		secProducts: "products", secPopcnt: "popcnt", secMasks: "masks",
		secRelOff: "reloff", secRelRefs: "relrefs", secRelVersions: "relversions",
		secInvFlags: "invflags", secInvMasks: "invmasks",
		secDistroPost: "distropost", secClassPost: "classpost",
		secRemotePost: "remotepost", secYearStart: "yearstart",
		secMulti: "multi", secMultiFlags: "multiflags",
		secMultiPairOff: "multipairoff", secMultiPairs: "multipairs",
		secInvDistroPost: "invdistropost", secInvValidityPost: "invvaliditypost",
	}
	if n, ok := names[id]; ok {
		return n
	}
	return "unknown"
}

// allSections lists every section ID in file order.
var allSections = []uint32{
	secMeta, secIDs, secYears, secFlags, secProducts, secPopcnt, secMasks,
	secRelOff, secRelRefs, secRelVersions, secInvFlags, secInvMasks,
	secDistroPost, secClassPost, secRemotePost, secYearStart,
	secMulti, secMultiFlags, secMultiPairOff, secMultiPairs,
	secInvDistroPost, secInvValidityPost,
}

// Meta is the provenance document embedded in every snapshot (section
// 1, JSON). The shape fields (entry counts, universe dimensions, year
// range) are filled by the writer from the columns themselves and
// cross-checked by the reader; the provenance fields describe where the
// corpus came from.
type Meta struct {
	// Tool names the writer ("osdiversity").
	Tool string `json:"tool"`
	// Universe reconstructs the registry: "paper" or "synthetic:<n>".
	Universe string `json:"universe"`
	// Source describes the corpus origin ("feeds", "calibrated",
	// "synthetic:<n>", ...), echoed by /corpus after a snapshot boot.
	Source string `json:"source"`
	// SavedAtUnix is the save wall-clock time, the epoch a
	// snapshot-booted process reports.
	SavedAtUnix int64 `json:"saved_at_unix"`

	ValidEntries   int `json:"valid_entries"`
	InvalidEntries int `json:"invalid_entries"`
	// SkippedEntries counts ingested entries with no clustered OS
	// product; MalformedSkipped counts entries a lenient feed reader
	// dropped before ingestion. Both survive the round trip.
	SkippedEntries   int `json:"skipped_entries"`
	MalformedSkipped int `json:"malformed_skipped"`

	NumDistros int `json:"num_distros"`
	MaskWords  int `json:"mask_words"`
	MinYear    int `json:"min_year"`
	MaxYear    int `json:"max_year"`
}

func (m Meta) marshal() ([]byte, error) { return json.Marshal(m) }

func align8(n int) int { return (n + 7) &^ 7 }
