package snapshot

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"osdiversity/internal/core"
	"osdiversity/internal/corpus"
	"osdiversity/internal/osmap"
)

// testColumns digests a small synthetic corpus and exports its columns.
func testColumns(t testing.TB) *core.Columns {
	t.Helper()
	sc, err := corpus.GenerateSynthetic(corpus.SyntheticConfig{Entries: 500, Distros: 8, Seed: 7})
	if err != nil {
		t.Fatalf("GenerateSynthetic: %v", err)
	}
	s := core.NewStudy(sc.Entries, core.WithRegistry(sc.Registry))
	return s.ExportColumns()
}

func testMeta() Meta {
	return Meta{Universe: "synthetic:8", Source: "synthetic:8", SavedAtUnix: 1700000000, MalformedSkipped: 3}
}

func encodeTest(t testing.TB) []byte {
	t.Helper()
	buf, err := Encode(testColumns(t), testMeta())
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return buf
}

// TestEncodeDecodeRoundTrip asserts a decoded image reproduces the
// exported columns exactly, through both the zero-copy and the portable
// copying decode paths.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	cols := testColumns(t)
	buf, err := Encode(cols, testMeta())
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	for _, copying := range []bool{false, true} {
		forceCopy = copying
		t.Cleanup(func() { forceCopy = false })
		snap, err := Decode(buf)
		if err != nil {
			t.Fatalf("Decode(forceCopy=%t): %v", copying, err)
		}
		if !reflect.DeepEqual(&snap.Cols, cols) {
			t.Errorf("forceCopy=%t: decoded columns differ from exported", copying)
		}
		if snap.Meta.MalformedSkipped != 3 || snap.Meta.Universe != "synthetic:8" {
			t.Errorf("meta did not round-trip: %+v", snap.Meta)
		}
		if snap.Meta.ValidEntries != len(cols.IDs) || snap.Meta.SkippedEntries != cols.Skipped {
			t.Errorf("meta counts %d/%d disagree with columns %d/%d",
				snap.Meta.ValidEntries, snap.Meta.SkippedEntries, len(cols.IDs), cols.Skipped)
		}
		if !strings.HasPrefix(snap.Digest, "crc32c:") {
			t.Errorf("digest = %q, want crc32c-prefixed", snap.Digest)
		}
	}
}

// TestSaveOpen exercises the file path: atomic save, mmap (or fallback)
// open, close.
func TestSaveOpen(t *testing.T) {
	cols := testColumns(t)
	path := filepath.Join(t.TempDir(), "study.osds")
	if err := Save(path, cols, testMeta()); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Errorf("temp file left behind: %v", err)
	}
	snap, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if !reflect.DeepEqual(&snap.Cols, cols) {
		t.Error("opened columns differ from exported")
	}
	if err := snap.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if err := snap.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

// reCRC recomputes both header checksums after a test mutation, so a
// corruption case exercises its intended validation step rather than
// tripping the checksum first.
func reCRC(buf []byte) {
	count := int(binary.LittleEndian.Uint32(buf[12:]))
	tableEnd := headerSize + count*secEntrySize
	binary.LittleEndian.PutUint32(buf[24:], crc32.Checksum(buf[headerSize:tableEnd], castagnoli))
	binary.LittleEndian.PutUint32(buf[28:], crc32.Checksum(buf[align8(tableEnd):], castagnoli))
}

// TestDecodeCorruption is the fail-fast table: every corruption class
// must produce a clear error, never a panic.
func TestDecodeCorruption(t *testing.T) {
	pristine := encodeTest(t)
	cases := []struct {
		name    string
		corrupt func(b []byte) []byte
		want    string
	}{
		{"empty file", func(b []byte) []byte { return nil }, "truncated"},
		{"truncated header", func(b []byte) []byte { return b[:headerSize-1] }, "truncated"},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-9] }, "truncated"},
		{"bad magic", func(b []byte) []byte {
			copy(b, "NOTASNAP")
			return b
		}, "not an osdiversity snapshot"},
		{"future version", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[8:], FormatVersion+1)
			return b
		}, "newer than this build"},
		{"version zero", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[8:], 0)
			return b
		}, "unsupported format version"},
		{"implausible section count", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[12:], maxSections+1)
			return b
		}, "implausible section count"},
		{"table checksum mismatch", func(b []byte) []byte {
			b[headerSize] ^= 0xFF
			return b
		}, "section table checksum mismatch"},
		{"payload bit flip", func(b []byte) []byte {
			b[len(b)-1] ^= 0x01
			return b
		}, "payload checksum mismatch"},
		{"unknown section id", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[headerSize:], 99)
			reCRC(b)
			return b
		}, "unknown section id 99"},
		{"duplicate section", func(b []byte) []byte {
			// Overwrite the second table entry's id with the first's.
			id := binary.LittleEndian.Uint32(b[headerSize:])
			binary.LittleEndian.PutUint32(b[headerSize+secEntrySize:], id)
			reCRC(b)
			return b
		}, "duplicate section"},
		{"section out of bounds", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[headerSize+8:], uint64(len(b)))
			binary.LittleEndian.PutUint64(b[headerSize+16:], 64)
			reCRC(b)
			return b
		}, "out of bounds"},
		{"misaligned section", func(b []byte) []byte {
			off := binary.LittleEndian.Uint64(b[headerSize+8:])
			binary.LittleEndian.PutUint64(b[headerSize+8:], off+4)
			reCRC(b)
			return b
		}, "not 8-byte aligned"},
		{"garbage meta", func(b []byte) []byte {
			// The meta section is the first payload; stomp its JSON.
			off := binary.LittleEndian.Uint64(b[headerSize+8:])
			b[off] = '{'
			b[off+1] = 'x'
			reCRC(b)
			return b
		}, "meta document"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			buf := tc.corrupt(append([]byte(nil), pristine...))
			snap, err := Decode(buf)
			if err == nil {
				t.Fatalf("Decode accepted corrupted image (%+v)", snap.Meta)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
			if !strings.HasPrefix(err.Error(), "snapshot: ") {
				t.Errorf("error %q not snapshot-prefixed", err)
			}
		})
	}
}

// TestDecodeSizeMismatch covers the declared-size fast path with an
// appended tail (the file-size check catches growth as well as
// truncation).
func TestDecodeSizeMismatch(t *testing.T) {
	buf := append(encodeTest(t), 0, 0, 0, 0, 0, 0, 0, 0)
	if _, err := Decode(buf); err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Errorf("Decode of oversized image: %v", err)
	}
}

// TestOpenMissing asserts a clean error for a nonexistent path.
func TestOpenMissing(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "absent.osds")); err == nil {
		t.Error("Open of missing file succeeded")
	}
}

// FuzzSnapshotDecode throws mutated headers and section tables at
// Decode; any input may be rejected, none may panic. The corpus seeds a
// pristine image so mutations explore the validation space from a valid
// starting point.
func FuzzSnapshotDecode(f *testing.F) {
	pristine := encodeTest(f)
	f.Add(pristine)
	f.Add(pristine[:headerSize])
	f.Add([]byte(magic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := Decode(data)
		if err != nil {
			if !strings.HasPrefix(err.Error(), "snapshot: ") {
				t.Errorf("error %q not snapshot-prefixed", err)
			}
			return
		}
		// Accepted images must also pass the deep structural validation
		// without panicking (FromColumns bounds-checks every index).
		if reg := registryForTest(snap.Meta.Universe); reg != nil {
			_, _ = core.FromColumns(&snap.Cols, core.WithRegistry(reg))
		}
	})
}

// registryForTest mirrors the facade's universe reconstruction for the
// fuzz harness, which cannot import the root package (cycle).
func registryForTest(uni string) *osmap.Registry {
	if uni == "paper" {
		return osmap.NewRegistry()
	}
	if rest, ok := strings.CutPrefix(uni, "synthetic:"); ok {
		if n, err := strconv.Atoi(rest); err == nil && n >= 2 && n <= 1024 {
			return osmap.NewSyntheticRegistry(n)
		}
	}
	return nil
}
