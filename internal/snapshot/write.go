package snapshot

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"

	"osdiversity/internal/core"
)

// castagnoli is the CRC-32C table both checksums use; hardware-
// accelerated by hash/crc32 on amd64/arm64, so verifying a multi-MB
// snapshot costs single-digit milliseconds of the warm-start budget.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Encode renders the columns and provenance into one snapshot image.
// The shape fields of meta are overwritten from the columns, so writer
// and payload can never disagree.
func Encode(cols *core.Columns, meta Meta) ([]byte, error) {
	meta.Tool = "osdiversity"
	meta.ValidEntries = len(cols.IDs)
	meta.InvalidEntries = len(cols.InvFlags)
	meta.SkippedEntries = cols.Skipped
	meta.NumDistros = cols.NumDistros
	meta.MaskWords = cols.MaskWords
	meta.MinYear, meta.MaxYear = cols.MinYear, cols.MaxYear
	mb, err := meta.marshal()
	if err != nil {
		return nil, fmt.Errorf("snapshot: encode meta: %w", err)
	}

	payloads := map[uint32][]byte{
		secMeta:            mb,
		secIDs:             u64Bytes(cols.IDs),
		secYears:           i32Bytes(cols.Years),
		secFlags:           cols.Flags,
		secProducts:        u16Bytes(cols.Products),
		secPopcnt:          u16Bytes(cols.Popcnt),
		secMasks:           u64Bytes(cols.Masks),
		secRelOff:          i32Bytes(cols.RelOff),
		secRelRefs:         u64Bytes(cols.RelRefs),
		secRelVersions:     stringBytes(cols.RelVersions),
		secInvFlags:        cols.InvFlags,
		secInvMasks:        u64Bytes(cols.InvMasks),
		secDistroPost:      u64Bytes(cols.DistroPost),
		secClassPost:       u64Bytes(cols.ClassPost),
		secRemotePost:      u64Bytes(cols.RemotePost),
		secYearStart:       i64Bytes(cols.YearStart),
		secMulti:           i32Bytes(cols.Multi),
		secMultiFlags:      cols.MultiFlags,
		secMultiPairOff:    i32Bytes(cols.MultiPairOff),
		secMultiPairs:      i32Bytes(cols.MultiPairs),
		secInvDistroPost:   u64Bytes(cols.InvDistroPost),
		secInvValidityPost: u64Bytes(cols.InvValidityPost),
	}

	count := len(allSections)
	payloadStart := align8(headerSize + count*secEntrySize)
	size := payloadStart
	offsets := make(map[uint32]int, count)
	for _, id := range allSections {
		offsets[id] = size
		size += align8(len(payloads[id]))
	}

	buf := make([]byte, size)
	copy(buf, magic)
	binary.LittleEndian.PutUint32(buf[8:], FormatVersion)
	binary.LittleEndian.PutUint32(buf[12:], uint32(count))
	binary.LittleEndian.PutUint64(buf[16:], uint64(size))
	for i, id := range allSections {
		e := buf[headerSize+i*secEntrySize:]
		binary.LittleEndian.PutUint32(e, id)
		binary.LittleEndian.PutUint64(e[8:], uint64(offsets[id]))
		binary.LittleEndian.PutUint64(e[16:], uint64(len(payloads[id])))
		copy(buf[offsets[id]:], payloads[id])
	}
	binary.LittleEndian.PutUint32(buf[24:],
		crc32.Checksum(buf[headerSize:headerSize+count*secEntrySize], castagnoli))
	binary.LittleEndian.PutUint32(buf[28:],
		crc32.Checksum(buf[payloadStart:], castagnoli))
	return buf, nil
}

// Save atomically writes the snapshot: the image lands in path+".tmp"
// and is renamed into place, so a crashed writer never leaves a partial
// file under the final name.
func Save(path string, cols *core.Columns, meta Meta) error {
	buf, err := Encode(cols, meta)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return fmt.Errorf("snapshot: write %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("snapshot: rename into place: %w", err)
	}
	return nil
}

func u64Bytes(v []uint64) []byte {
	b := make([]byte, len(v)*8)
	for i, x := range v {
		binary.LittleEndian.PutUint64(b[i*8:], x)
	}
	return b
}

func i64Bytes(v []int64) []byte {
	b := make([]byte, len(v)*8)
	for i, x := range v {
		binary.LittleEndian.PutUint64(b[i*8:], uint64(x))
	}
	return b
}

func i32Bytes(v []int32) []byte {
	b := make([]byte, len(v)*4)
	for i, x := range v {
		binary.LittleEndian.PutUint32(b[i*4:], uint32(x))
	}
	return b
}

func u16Bytes(v []uint16) []byte {
	b := make([]byte, len(v)*2)
	for i, x := range v {
		binary.LittleEndian.PutUint16(b[i*2:], x)
	}
	return b
}

// stringBytes renders a string table: u32 count, then u32 length +
// bytes per entry (byte-granular inside the section).
func stringBytes(v []string) []byte {
	size := 4
	for _, s := range v {
		size += 4 + len(s)
	}
	b := make([]byte, size)
	binary.LittleEndian.PutUint32(b, uint32(len(v)))
	off := 4
	for _, s := range v {
		binary.LittleEndian.PutUint32(b[off:], uint32(len(s)))
		off += 4
		copy(b[off:], s)
		off += len(s)
	}
	return b
}
