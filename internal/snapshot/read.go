package snapshot

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"unsafe"

	"osdiversity/internal/core"
)

// Snapshot is a decoded file: the provenance document, the adopted
// columns, and the payload digest. The columns may alias an mmap'd
// region — keep the Snapshot alive for as long as any Study built from
// Cols, and Close it afterwards.
type Snapshot struct {
	Meta Meta
	Cols core.Columns
	// Digest identifies the payload ("crc32c:xxxxxxxx"), surfaced by
	// /corpus so replicas booted from the same file are recognizable.
	Digest string

	closer func() error
}

// Close releases the underlying file mapping, if any. The columns must
// not be used afterwards.
func (s *Snapshot) Close() error {
	if s == nil || s.closer == nil {
		return nil
	}
	c := s.closer
	s.closer = nil
	return c()
}

// Open maps (or, where mmap is unavailable, reads) the file and decodes
// it. Every failure — truncation, checksum mismatch, unknown sections,
// future versions — is a wrapped error, never a panic.
func Open(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	size := st.Size()
	if size >= headerSize {
		if data, closer, err := mapFile(f, size); err == nil {
			snap, derr := Decode(data)
			if derr != nil {
				closer()
				return nil, derr
			}
			snap.closer = closer
			return snap, nil
		}
	}
	// Portable fallback: pull the whole image through an io.ReaderAt.
	data := make([]byte, size)
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, size), data); err != nil {
		return nil, fmt.Errorf("snapshot: read %s: %w", path, err)
	}
	return Decode(data)
}

// Decode validates and decodes one snapshot image. On little-endian
// hosts the fixed-width columns alias data without copying (when their
// offsets land on aligned addresses); otherwise they are decoded into
// fresh slices.
func Decode(data []byte) (*Snapshot, error) {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("snapshot: "+format, args...)
	}
	if len(data) < headerSize {
		return nil, fail("truncated: %d bytes, need at least the %d-byte header", len(data), headerSize)
	}
	if string(data[:8]) != magic {
		return nil, fail("bad magic %q: not an osdiversity snapshot", data[:8])
	}
	version := binary.LittleEndian.Uint32(data[8:])
	if version > FormatVersion {
		return nil, fail("format version %d is newer than this build supports (%d); upgrade osdiversity", version, FormatVersion)
	}
	if version != FormatVersion {
		return nil, fail("unsupported format version %d", version)
	}
	count := int(binary.LittleEndian.Uint32(data[12:]))
	if count > maxSections {
		return nil, fail("implausible section count %d (max %d)", count, maxSections)
	}
	fileSize := binary.LittleEndian.Uint64(data[16:])
	if fileSize != uint64(len(data)) {
		return nil, fail("truncated: header declares %d bytes, file has %d", fileSize, len(data))
	}
	tableEnd := headerSize + count*secEntrySize
	payloadStart := align8(tableEnd)
	if payloadStart > len(data) {
		return nil, fail("truncated: section table needs %d bytes, file has %d", payloadStart, len(data))
	}
	wantTableCRC := binary.LittleEndian.Uint32(data[24:])
	if got := crc32.Checksum(data[headerSize:tableEnd], castagnoli); got != wantTableCRC {
		return nil, fail("section table checksum mismatch: file says %08x, computed %08x", wantTableCRC, got)
	}
	wantDataCRC := binary.LittleEndian.Uint32(data[28:])
	if got := crc32.Checksum(data[payloadStart:], castagnoli); got != wantDataCRC {
		return nil, fail("payload checksum mismatch: file says %08x, computed %08x", wantDataCRC, got)
	}

	secs := make(map[uint32][]byte, count)
	for i := 0; i < count; i++ {
		e := data[headerSize+i*secEntrySize:]
		id := binary.LittleEndian.Uint32(e)
		off := binary.LittleEndian.Uint64(e[8:])
		ln := binary.LittleEndian.Uint64(e[16:])
		if sectionName(id) == "unknown" {
			return nil, fail("unknown section id %d: file written by an incompatible tool", id)
		}
		if _, dup := secs[id]; dup {
			return nil, fail("duplicate section %s", sectionName(id))
		}
		if off%8 != 0 {
			return nil, fail("section %s offset %d not 8-byte aligned", sectionName(id), off)
		}
		if off < uint64(payloadStart) || off > uint64(len(data)) || ln > uint64(len(data))-off {
			return nil, fail("section %s [%d, +%d) out of bounds (file is %d bytes)",
				sectionName(id), off, ln, len(data))
		}
		secs[id] = data[off : off+ln : off+ln]
	}
	for _, id := range allSections {
		if _, ok := secs[id]; !ok {
			return nil, fail("missing section %s", sectionName(id))
		}
	}

	snap := &Snapshot{Digest: fmt.Sprintf("crc32c:%08x", wantDataCRC)}
	if err := json.Unmarshal(secs[secMeta], &snap.Meta); err != nil {
		return nil, fail("meta document: %v", err)
	}

	c := &snap.Cols
	var err error
	dec := func(dst any, id uint32) {
		if err != nil {
			return
		}
		b := secs[id]
		name := sectionName(id)
		switch p := dst.(type) {
		case *[]uint64:
			*p, err = u64Section(b, name)
		case *[]int64:
			*p, err = i64Section(b, name)
		case *[]int32:
			*p, err = i32Section(b, name)
		case *[]uint16:
			*p, err = u16Section(b, name)
		case *[]uint8:
			*p = b
		case *[]string:
			*p, err = stringSection(b, name)
		}
	}
	dec(&c.IDs, secIDs)
	dec(&c.Years, secYears)
	dec(&c.Flags, secFlags)
	dec(&c.Products, secProducts)
	dec(&c.Popcnt, secPopcnt)
	dec(&c.Masks, secMasks)
	dec(&c.RelOff, secRelOff)
	dec(&c.RelRefs, secRelRefs)
	dec(&c.RelVersions, secRelVersions)
	dec(&c.InvFlags, secInvFlags)
	dec(&c.InvMasks, secInvMasks)
	dec(&c.DistroPost, secDistroPost)
	dec(&c.ClassPost, secClassPost)
	dec(&c.RemotePost, secRemotePost)
	dec(&c.YearStart, secYearStart)
	dec(&c.Multi, secMulti)
	dec(&c.MultiFlags, secMultiFlags)
	dec(&c.MultiPairOff, secMultiPairOff)
	dec(&c.MultiPairs, secMultiPairs)
	dec(&c.InvDistroPost, secInvDistroPost)
	dec(&c.InvValidityPost, secInvValidityPost)
	if err != nil {
		return nil, err
	}
	c.NumDistros = snap.Meta.NumDistros
	c.MaskWords = snap.Meta.MaskWords
	c.Skipped = snap.Meta.SkippedEntries
	c.MinYear, c.MaxYear = snap.Meta.MinYear, snap.Meta.MaxYear

	if snap.Meta.ValidEntries != len(c.IDs) {
		return nil, fail("meta declares %d valid entries, ids column has %d", snap.Meta.ValidEntries, len(c.IDs))
	}
	if snap.Meta.InvalidEntries != len(c.InvFlags) {
		return nil, fail("meta declares %d invalid entries, invflags column has %d", snap.Meta.InvalidEntries, len(c.InvFlags))
	}
	if snap.Meta.NumDistros < 0 || snap.Meta.MaskWords < 0 || snap.Meta.SkippedEntries < 0 {
		return nil, fail("meta declares negative counts")
	}
	return snap, nil
}

// nativeLE reports whether this host stores integers little-endian, the
// precondition for the zero-copy reslicing path.
var nativeLE = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// forceCopy disables zero-copy reslicing; tests flip it to cover the
// portable decode path on any host.
var forceCopy = false

func sliceable(b []byte, align uintptr) bool {
	return nativeLE && !forceCopy && uintptr(unsafe.Pointer(&b[0]))%align == 0
}

func u64Section(b []byte, name string) ([]uint64, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("snapshot: section %s length %d not a multiple of 8", name, len(b))
	}
	n := len(b) / 8
	if n == 0 {
		return []uint64{}, nil
	}
	if sliceable(b, 8) {
		return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), n), nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[i*8:])
	}
	return out, nil
}

func i64Section(b []byte, name string) ([]int64, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("snapshot: section %s length %d not a multiple of 8", name, len(b))
	}
	n := len(b) / 8
	if n == 0 {
		return []int64{}, nil
	}
	if sliceable(b, 8) {
		return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), n), nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out, nil
}

func i32Section(b []byte, name string) ([]int32, error) {
	if len(b)%4 != 0 {
		return nil, fmt.Errorf("snapshot: section %s length %d not a multiple of 4", name, len(b))
	}
	n := len(b) / 4
	if n == 0 {
		return []int32{}, nil
	}
	if sliceable(b, 4) {
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), n), nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out, nil
}

func u16Section(b []byte, name string) ([]uint16, error) {
	if len(b)%2 != 0 {
		return nil, fmt.Errorf("snapshot: section %s length %d not a multiple of 2", name, len(b))
	}
	n := len(b) / 2
	if n == 0 {
		return []uint16{}, nil
	}
	if sliceable(b, 2) {
		return unsafe.Slice((*uint16)(unsafe.Pointer(&b[0])), n), nil
	}
	out := make([]uint16, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint16(b[i*2:])
	}
	return out, nil
}

// stringSection decodes the length-prefixed string table. Strings are
// always copied (string headers cannot alias a file mapping safely
// without pinning semantics).
func stringSection(b []byte, name string) ([]string, error) {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("snapshot: section %s: "+format, append([]any{name}, args...)...)
	}
	if len(b) < 4 {
		return nil, bad("%d bytes, need the 4-byte count", len(b))
	}
	count := binary.LittleEndian.Uint32(b)
	if uint64(count) > uint64(len(b)) {
		return nil, bad("implausible string count %d in %d bytes", count, len(b))
	}
	out := make([]string, 0, count)
	off := 4
	for i := uint32(0); i < count; i++ {
		if len(b)-off < 4 {
			return nil, bad("truncated at string %d", i)
		}
		ln := int(binary.LittleEndian.Uint32(b[off:]))
		off += 4
		if ln < 0 || len(b)-off < ln {
			return nil, bad("string %d length %d exceeds section", i, ln)
		}
		out = append(out, string(b[off:off+ln]))
		off += ln
	}
	return out, nil
}
