//go:build !unix

package snapshot

import (
	"errors"
	"os"
)

// mapFile is unavailable on this platform; Open falls back to reading
// the image through an io.ReaderAt.
func mapFile(f *os.File, size int64) ([]byte, func() error, error) {
	return nil, nil, errors.New("snapshot: mmap unsupported on this platform")
}
