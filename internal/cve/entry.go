package cve

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"osdiversity/internal/cpe"
	"osdiversity/internal/cvss"
)

// Entry is one NVD vulnerability report, reduced to the fields the paper's
// methodology section says the study needs: "the name, publication date,
// summary (description), type of exploit (local or remote) and the list of
// affected configurations".
type Entry struct {
	// ID is the CVE identifier of the entry.
	ID ID
	// Published is the publication date of the entry in NVD.
	Published time.Time
	// Summary is the free-text description. The validity tags the paper
	// filters on (Unknown, Unspecified, **DISPUTED**) appear here, as they
	// do in real NVD summaries.
	Summary string
	// CVSS is the parsed base vector; the zero value means the entry
	// carries no CVSS data (common for very old entries).
	CVSS cvss.Vector
	// Products lists the affected platforms (the vulnerable-software list
	// of the feed). Only entries with at least one "/o" product are
	// OS-level vulnerabilities.
	Products []cpe.Name
}

// Remote reports whether the entry is remotely exploitable under the
// paper's criterion (CVSS access vector NETWORK or ADJACENT_NETWORK).
// Entries without CVSS data are conservatively treated as local.
func (e *Entry) Remote() bool {
	return !e.CVSS.IsZero() && e.CVSS.AV.Remote()
}

// HasOSProduct reports whether any affected product is an operating
// system platform ("/o" part), which is the paper's selection criterion
// for OS-level vulnerabilities.
func (e *Entry) HasOSProduct() bool {
	for _, p := range e.Products {
		if p.IsOS() {
			return true
		}
	}
	return false
}

// OSProducts returns the affected products restricted to the OS part.
// The returned slice is freshly allocated.
func (e *Entry) OSProducts() []cpe.Name {
	var out []cpe.Name
	for _, p := range e.Products {
		if p.IsOS() {
			out = append(out, p)
		}
	}
	return out
}

// AffectsProduct reports whether the entry lists a product matching the
// given (vendor, product) pair, irrespective of version.
func (e *Entry) AffectsProduct(vendor, product string) bool {
	for _, p := range e.Products {
		if p.Vendor == vendor && p.Product == product {
			return true
		}
	}
	return false
}

// Year returns the publication year.
func (e *Entry) Year() int { return e.Published.Year() }

// Validate checks internal consistency of the entry: a usable ID, a
// publication date, and a non-empty product list with no duplicates.
func (e *Entry) Validate() error {
	if e.ID.IsZero() {
		return fmt.Errorf("cve: entry has zero ID")
	}
	if e.Published.IsZero() {
		return fmt.Errorf("cve: entry %s has no publication date", e.ID)
	}
	if len(e.Products) == 0 {
		return fmt.Errorf("cve: entry %s affects no products", e.ID)
	}
	seen := make(map[string]bool, len(e.Products))
	for _, p := range e.Products {
		uri := p.URI()
		if seen[uri] {
			return fmt.Errorf("cve: entry %s lists product %s twice", e.ID, uri)
		}
		seen[uri] = true
	}
	return nil
}

// Clone returns a deep copy of the entry. Analysis code holds entries in
// shared sets; mutation always goes through a clone.
func (e *Entry) Clone() *Entry {
	dup := *e
	dup.Products = append([]cpe.Name(nil), e.Products...)
	return &dup
}

// SortEntries orders entries by ID (year, then sequence), giving analyses
// a deterministic iteration order.
func SortEntries(entries []*Entry) {
	sort.Slice(entries, func(i, j int) bool { return entries[i].ID.Less(entries[j].ID) })
}

// Set is a collection of entries keyed by CVE ID. The zero value is empty
// and ready to use via Add.
type Set struct {
	byID map[ID]*Entry
}

// NewSet builds a Set from the given entries. Duplicate IDs are rejected.
func NewSet(entries ...*Entry) (*Set, error) {
	s := &Set{byID: make(map[ID]*Entry, len(entries))}
	for _, e := range entries {
		if err := s.Add(e); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Add inserts an entry, rejecting duplicates by ID.
func (s *Set) Add(e *Entry) error {
	if s.byID == nil {
		s.byID = make(map[ID]*Entry)
	}
	if _, dup := s.byID[e.ID]; dup {
		return fmt.Errorf("cve: duplicate entry %s", e.ID)
	}
	s.byID[e.ID] = e
	return nil
}

// Get returns the entry with the given ID, or nil.
func (s *Set) Get(id ID) *Entry {
	if s == nil || s.byID == nil {
		return nil
	}
	return s.byID[id]
}

// Len returns the number of entries.
func (s *Set) Len() int {
	if s == nil {
		return 0
	}
	return len(s.byID)
}

// All returns the entries sorted by ID.
func (s *Set) All() []*Entry {
	if s == nil {
		return nil
	}
	out := make([]*Entry, 0, len(s.byID))
	for _, e := range s.byID {
		out = append(out, e)
	}
	SortEntries(out)
	return out
}

// Filter returns the sorted entries satisfying keep.
func (s *Set) Filter(keep func(*Entry) bool) []*Entry {
	if s == nil {
		return nil
	}
	var out []*Entry
	for _, e := range s.byID {
		if keep(e) {
			out = append(out, e)
		}
	}
	SortEntries(out)
	return out
}

// SummaryHasTag reports whether the entry summary carries the given NVD
// editorial tag (for example "Unspecified" or "** DISPUTED **"), matched
// case-insensitively on word prefixes the way the paper's manual pass
// identified them.
func SummaryHasTag(summary, tag string) bool {
	return strings.Contains(strings.ToLower(summary), strings.ToLower(tag))
}
