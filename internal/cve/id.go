// Package cve models Common Vulnerabilities and Exposures identifiers and
// vulnerability entries as they appear in the NIST National Vulnerability
// Database (NVD).
//
// The package is deliberately independent of any particular feed format:
// internal/nvdfeed converts XML entries into cve.Entry values, and the
// analysis layers consume only the types defined here.
package cve

import (
	"fmt"
	"strconv"
	"strings"
)

// ID is a CVE identifier such as "CVE-2008-4609".
//
// The zero value is not a valid identifier; use ParseID or MustID to build
// one. IDs order first by year and then by sequence number.
type ID struct {
	// Year is the year component of the identifier. It reflects when the
	// identifier was assigned, not necessarily when the vulnerability was
	// discovered or published.
	Year int
	// Seq is the sequence number within the year. Historically four
	// digits, but CVE allows arbitrarily long sequences since 2014; we
	// accept any non-negative number.
	Seq int
}

// ParseID parses an identifier of the form "CVE-YYYY-NNNN". The prefix is
// matched case-insensitively, as some sources write "cve-...".
func ParseID(s string) (ID, error) {
	parts := strings.SplitN(s, "-", 3)
	if len(parts) != 3 || !strings.EqualFold(parts[0], "CVE") {
		return ID{}, fmt.Errorf("cve: malformed identifier %q", s)
	}
	year, err := strconv.Atoi(parts[1])
	if err != nil || len(parts[1]) != 4 {
		return ID{}, fmt.Errorf("cve: malformed year in %q", s)
	}
	if year < 1988 || year > 2100 {
		return ID{}, fmt.Errorf("cve: implausible year %d in %q", year, s)
	}
	if len(parts[2]) < 4 {
		return ID{}, fmt.Errorf("cve: sequence too short in %q", s)
	}
	seq, err := strconv.Atoi(parts[2])
	if err != nil || seq < 0 {
		return ID{}, fmt.Errorf("cve: malformed sequence in %q", s)
	}
	return ID{Year: year, Seq: seq}, nil
}

// MustID is like ParseID but panics on malformed input. It is intended for
// package-level tables of well-known identifiers.
func MustID(s string) ID {
	id, err := ParseID(s)
	if err != nil {
		panic(err)
	}
	return id
}

// String renders the identifier in canonical "CVE-YYYY-NNNN" form. Sequence
// numbers are zero-padded to four digits, matching NVD's presentation.
func (id ID) String() string {
	return fmt.Sprintf("CVE-%04d-%04d", id.Year, id.Seq)
}

// IsZero reports whether id is the zero identifier.
func (id ID) IsZero() bool { return id.Year == 0 && id.Seq == 0 }

// Compare orders identifiers by year, then sequence. It returns -1, 0 or
// +1, matching the convention of strings.Compare.
func (id ID) Compare(other ID) int {
	switch {
	case id.Year < other.Year:
		return -1
	case id.Year > other.Year:
		return 1
	case id.Seq < other.Seq:
		return -1
	case id.Seq > other.Seq:
		return 1
	}
	return 0
}

// Less reports whether id sorts before other.
func (id ID) Less(other ID) bool { return id.Compare(other) < 0 }
