package cve

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestParseID(t *testing.T) {
	tests := []struct {
		name    string
		in      string
		want    ID
		wantErr bool
	}{
		{name: "canonical", in: "CVE-2008-4609", want: ID{2008, 4609}},
		{name: "lowercase prefix", in: "cve-2008-4609", want: ID{2008, 4609}},
		{name: "five digit seq", in: "CVE-2014-123456", want: ID{2014, 123456}},
		{name: "leading zeros", in: "CVE-1999-0003", want: ID{1999, 3}},
		{name: "paper dns cve", in: "CVE-2008-1447", want: ID{2008, 1447}},
		{name: "paper dhcp cve", in: "CVE-2007-5365", want: ID{2007, 5365}},
		{name: "empty", in: "", wantErr: true},
		{name: "missing seq", in: "CVE-2008", wantErr: true},
		{name: "bad prefix", in: "CAN-2008-4609", wantErr: true},
		{name: "two digit year", in: "CVE-99-1234", wantErr: true},
		{name: "five digit year", in: "CVE-20080-1234", wantErr: true},
		{name: "implausible year", in: "CVE-1947-1234", wantErr: true},
		{name: "short sequence", in: "CVE-2008-123", wantErr: true},
		{name: "alpha sequence", in: "CVE-2008-46a9", wantErr: true},
		{name: "negative sequence", in: "CVE-2008--609", wantErr: true},
		{name: "trailing junk", in: "CVE-2008-4609x", wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := ParseID(tt.in)
			if tt.wantErr {
				if err == nil {
					t.Fatalf("ParseID(%q) = %v, want error", tt.in, got)
				}
				return
			}
			if err != nil {
				t.Fatalf("ParseID(%q) unexpected error: %v", tt.in, err)
			}
			if got != tt.want {
				t.Fatalf("ParseID(%q) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestIDString(t *testing.T) {
	tests := []struct {
		id   ID
		want string
	}{
		{ID{2008, 4609}, "CVE-2008-4609"},
		{ID{1999, 3}, "CVE-1999-0003"},
		{ID{2014, 123456}, "CVE-2014-123456"},
	}
	for _, tt := range tests {
		if got := tt.id.String(); got != tt.want {
			t.Errorf("%#v.String() = %q, want %q", tt.id, got, tt.want)
		}
	}
}

func TestIDRoundTrip(t *testing.T) {
	f := func(year uint16, seq uint32) bool {
		id := ID{Year: 1988 + int(year)%100, Seq: int(seq % 10_000_000)}
		parsed, err := ParseID(id.String())
		return err == nil && parsed == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIDCompare(t *testing.T) {
	ids := []ID{{2010, 1}, {1999, 9999}, {2008, 4609}, {2008, 1447}, {1999, 3}}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
	want := []ID{{1999, 3}, {1999, 9999}, {2008, 1447}, {2008, 4609}, {2010, 1}}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("sorted[%d] = %v, want %v (full: %v)", i, ids[i], want[i], ids)
		}
	}
	if c := (ID{2008, 1447}).Compare(ID{2008, 1447}); c != 0 {
		t.Errorf("Compare(self) = %d, want 0", c)
	}
}

func TestCompareAntisymmetric(t *testing.T) {
	f := func(y1, y2 uint8, s1, s2 uint16) bool {
		a := ID{1990 + int(y1)%30, int(s1)}
		b := ID{1990 + int(y2)%30, int(s2)}
		return a.Compare(b) == -b.Compare(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMustIDPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustID on malformed input did not panic")
		}
	}()
	MustID("not-a-cve")
}
