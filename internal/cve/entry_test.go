package cve

import (
	"testing"
	"time"

	"osdiversity/internal/cpe"
	"osdiversity/internal/cvss"
)

func date(y int) time.Time { return time.Date(y, time.June, 15, 0, 0, 0, 0, time.UTC) }

func sampleEntry() *Entry {
	return &Entry{
		ID:        MustID("CVE-2008-4609"),
		Published: date(2008),
		Summary:   "The TCP implementation allows remote attackers to cause a denial of service.",
		CVSS:      cvss.MustParse("AV:N/AC:M/Au:N/C:N/I:N/A:C"),
		Products: []cpe.Name{
			cpe.MustParse("cpe:/o:openbsd:openbsd:4.2"),
			cpe.MustParse("cpe:/o:microsoft:windows_2000::sp4"),
			cpe.MustParse("cpe:/a:isc:bind:9.4"),
		},
	}
}

func TestEntryRemote(t *testing.T) {
	e := sampleEntry()
	if !e.Remote() {
		t.Error("network-vector entry not reported remote")
	}
	e.CVSS = cvss.MustParse("AV:L/AC:L/Au:N/C:C/I:C/A:C")
	if e.Remote() {
		t.Error("local-vector entry reported remote")
	}
	e.CVSS = cvss.MustParse("AV:A/AC:L/Au:N/C:P/I:N/A:N")
	if !e.Remote() {
		t.Error("adjacent-network entry not reported remote (paper counts it as remote)")
	}
	e.CVSS = cvss.Vector{}
	if e.Remote() {
		t.Error("entry without CVSS data must be conservatively local")
	}
}

func TestEntryOSProducts(t *testing.T) {
	e := sampleEntry()
	if !e.HasOSProduct() {
		t.Fatal("entry with /o products reports HasOSProduct = false")
	}
	os := e.OSProducts()
	if len(os) != 2 {
		t.Fatalf("OSProducts returned %d products, want 2", len(os))
	}
	for _, p := range os {
		if !p.IsOS() {
			t.Errorf("OSProducts returned non-OS product %s", p)
		}
	}
	appOnly := &Entry{
		ID:        MustID("CVE-2009-0001"),
		Published: date(2009),
		Products:  []cpe.Name{cpe.MustParse("cpe:/a:mozilla:firefox:3.0")},
	}
	if appOnly.HasOSProduct() {
		t.Error("application-only entry reports HasOSProduct = true")
	}
}

func TestEntryAffectsProduct(t *testing.T) {
	e := sampleEntry()
	if !e.AffectsProduct("openbsd", "openbsd") {
		t.Error("AffectsProduct misses listed product")
	}
	if e.AffectsProduct("sun", "solaris") {
		t.Error("AffectsProduct reports unlisted product")
	}
}

func TestEntryValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Entry)
		wantErr bool
	}{
		{name: "valid", mutate: func(*Entry) {}},
		{name: "zero id", mutate: func(e *Entry) { e.ID = ID{} }, wantErr: true},
		{name: "no date", mutate: func(e *Entry) { e.Published = time.Time{} }, wantErr: true},
		{name: "no products", mutate: func(e *Entry) { e.Products = nil }, wantErr: true},
		{name: "duplicate product", mutate: func(e *Entry) {
			e.Products = append(e.Products, e.Products[0])
		}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			e := sampleEntry()
			tt.mutate(e)
			err := e.Validate()
			if (err != nil) != tt.wantErr {
				t.Fatalf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestEntryClone(t *testing.T) {
	e := sampleEntry()
	dup := e.Clone()
	dup.Products[0] = cpe.MustParse("cpe:/o:netbsd:netbsd:4.0")
	dup.Summary = "changed"
	if e.Products[0].Vendor != "openbsd" {
		t.Error("mutating clone products affected original")
	}
	if e.Summary == dup.Summary {
		t.Error("mutating clone summary affected original")
	}
}

func TestSet(t *testing.T) {
	a := sampleEntry()
	b := &Entry{ID: MustID("CVE-2007-5365"), Published: date(2007),
		Products: []cpe.Name{cpe.MustParse("cpe:/o:openbsd:openbsd")}}
	s, err := NewSet(a, b)
	if err != nil {
		t.Fatalf("NewSet: %v", err)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if got := s.Get(a.ID); got != a {
		t.Error("Get returned wrong entry")
	}
	if got := s.Get(MustID("CVE-1999-0001")); got != nil {
		t.Errorf("Get(absent) = %v, want nil", got)
	}
	if err := s.Add(a); err == nil {
		t.Error("Add(duplicate) did not fail")
	}
	all := s.All()
	if len(all) != 2 || !all[0].ID.Less(all[1].ID) {
		t.Errorf("All() not sorted: %v, %v", all[0].ID, all[1].ID)
	}
	remote := s.Filter((*Entry).Remote)
	if len(remote) != 1 || remote[0].ID != a.ID {
		t.Errorf("Filter(Remote) = %d entries, want just %v", len(remote), a.ID)
	}
}

func TestZeroSet(t *testing.T) {
	var s Set
	if s.Len() != 0 || s.Get(MustID("CVE-1999-0001")) != nil {
		t.Error("zero Set not empty")
	}
	if err := s.Add(sampleEntry()); err != nil {
		t.Fatalf("Add on zero Set: %v", err)
	}
	if s.Len() != 1 {
		t.Error("Add on zero Set did not insert")
	}
}

func TestSummaryHasTag(t *testing.T) {
	tests := []struct {
		summary, tag string
		want         bool
	}{
		{"Unspecified vulnerability in the kernel", "Unspecified", true},
		{"unspecified vulnerability", "Unspecified", true},
		{"** DISPUTED ** buffer overflow in ...", "** DISPUTED **", true},
		{"Unknown vulnerability in login", "Unknown", true},
		{"Buffer overflow in sshd", "Unspecified", false},
	}
	for _, tt := range tests {
		if got := SummaryHasTag(tt.summary, tt.tag); got != tt.want {
			t.Errorf("SummaryHasTag(%q, %q) = %v, want %v", tt.summary, tt.tag, got, tt.want)
		}
	}
}
