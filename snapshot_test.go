package osdiversity

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"testing"
	"time"
)

// fullFingerprint widens tableFingerprint with every remaining facade
// query — replica selection, the release grid, filtering, the attack
// extension — so a snapshot-loaded analysis is compared against its
// feed-built original across the whole API surface, byte for byte.
func fullFingerprint(t *testing.T, a *Analysis) []byte {
	t.Helper()
	overlap, err := a.ReleaseOverlap("Debian", "4.0", "RedHat", "5.0")
	if err != nil {
		t.Fatalf("ReleaseOverlap: %v", err)
	}
	atk, err := a.SimulateAttack("set1", []string{"Windows2003", "Solaris", "Debian", "OpenBSD"}, 1, 20)
	if err != nil {
		t.Fatalf("SimulateAttack: %v", err)
	}
	doc := map[string]any{
		"tables":  json.RawMessage(tableFingerprint(t, a)),
		"select":  a.SelectReplicaSets(4, true, 2005),
		"overlap": overlap,
		"filter":  a.FilterReduction(),
		"attack":  atk,
		"most200": a.MostShared(200),
		"names":   a.OSNames(),
		"skipped": a.MalformedSkipped(),
	}
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatalf("marshal full fingerprint: %v", err)
	}
	return raw
}

// TestSnapshotRoundTripCalibrated is the tentpole acceptance test: the
// calibrated corpus saved to a snapshot and warm-started back yields
// byte-identical answers at workers 1 and 4, on both engines.
func TestSnapshotRoundTripCalibrated(t *testing.T) {
	for _, workers := range []int{1, 4} {
		path := filepath.Join(t.TempDir(), "study.osds")
		built, err := LoadCalibrated(WithParallelism(workers), WithSnapshot(path))
		if err != nil {
			t.Fatalf("LoadCalibrated(workers=%d): %v", workers, err)
		}
		loaded, err := LoadSnapshot(path, WithParallelism(workers))
		if err != nil {
			t.Fatalf("LoadSnapshot(workers=%d): %v", workers, err)
		}
		t.Cleanup(func() { loaded.Close() })

		if loaded.SnapshotDigest() == "" {
			t.Error("snapshot-loaded analysis reports no digest")
		}
		if built.SnapshotDigest() != "" {
			t.Errorf("feed-built analysis reports digest %q", built.SnapshotDigest())
		}
		// The epoch survives at second precision: every replica booted
		// from one snapshot reports the build's save time.
		if want := time.Unix(built.Epoch().Unix(), 0); !loaded.Epoch().Equal(want) {
			t.Errorf("epoch %v != saved %v", loaded.Epoch(), want)
		}
		if loaded.ValidCount() != built.ValidCount() {
			t.Errorf("ValidCount %d != %d", loaded.ValidCount(), built.ValidCount())
		}
		want := fullFingerprint(t, built)
		if got := fullFingerprint(t, loaded); !bytes.Equal(want, got) {
			t.Errorf("workers %d: snapshot-loaded tables differ from feed-built tables", workers)
		}
		scan, err := LoadSnapshot(path, WithParallelism(workers), WithEngine(EngineScan))
		if err != nil {
			t.Fatalf("LoadSnapshot(scan, workers=%d): %v", workers, err)
		}
		t.Cleanup(func() { scan.Close() })
		if got := fullFingerprint(t, scan); !bytes.Equal(want, got) {
			t.Errorf("workers %d: scan-engine snapshot tables differ from feed-built tables", workers)
		}
	}
}

// TestSnapshotRoundTripSynthetic covers a non-paper universe: a seeded
// synthetic corpus wide enough to include every paper distro plus
// generated ones. Scaled down so it runs under -race; the 100k version
// lives in snapshot_big_test.go.
func TestSnapshotRoundTripSynthetic(t *testing.T) {
	spec := SyntheticSpec{Entries: 8_000, Distros: 16, Seed: 11}
	path := filepath.Join(t.TempDir(), "syn.osds")
	built, err := LoadSynthetic(spec, WithParallelism(4), WithSnapshot(path))
	if err != nil {
		t.Fatalf("LoadSynthetic: %v", err)
	}
	loaded, err := LoadSnapshot(path, WithParallelism(4))
	if err != nil {
		t.Fatalf("LoadSnapshot: %v", err)
	}
	t.Cleanup(func() { loaded.Close() })
	if got, want := len(loaded.OSNames()), len(built.OSNames()); got != want {
		t.Fatalf("universe width %d != %d", got, want)
	}
	if want, got := fullFingerprint(t, built), fullFingerprint(t, loaded); !bytes.Equal(want, got) {
		t.Error("synthetic snapshot round trip changed the tables")
	}
}

// TestSnapshotFromStreamImport covers the nvdimport path: the streamed
// SQL import tees the entry flow through the incremental Study builder
// when a snapshot is requested, and the snapshot it writes must answer
// like a directly feed-built analysis. (Regression: the tee goroutine
// once captured the reassigned channel variable and deadlocked on its
// own output.)
func TestSnapshotFromStreamImport(t *testing.T) {
	dir := t.TempDir()
	feeds, err := GenerateFeeds(filepath.Join(dir, "feeds"), WithParallelism(4))
	if err != nil {
		t.Fatalf("GenerateFeeds: %v", err)
	}
	snap := filepath.Join(dir, "import.osds")
	stored, _, err := ImportFeedsStream(filepath.Join(dir, "s.db"), feeds,
		WithParallelism(2), WithSnapshot(snap))
	if err != nil || stored == 0 {
		t.Fatalf("ImportFeedsStream: %v, %d stored", err, stored)
	}
	loaded, err := LoadSnapshot(snap, WithParallelism(2))
	if err != nil {
		t.Fatalf("LoadSnapshot: %v", err)
	}
	t.Cleanup(func() { loaded.Close() })
	built, err := LoadFeeds(feeds, WithParallelism(2))
	if err != nil {
		t.Fatalf("LoadFeeds: %v", err)
	}
	if want, got := fullFingerprint(t, built), fullFingerprint(t, loaded); !bytes.Equal(want, got) {
		t.Error("stream-import snapshot differs from feed-built tables")
	}
}

// TestSnapshotLenientSkipCounts asserts the lenient skip counter rides
// along in the snapshot metadata: a warm-started replica reports the
// same dropped-entry count as the process that ingested the feeds.
func TestSnapshotLenientSkipCounts(t *testing.T) {
	paths, bad := writeLenientFeeds(t, t.TempDir())
	if bad == 0 {
		t.Fatal("fixture wrote no malformed entries")
	}
	path := filepath.Join(t.TempDir(), "lenient.osds")
	var streamStats FeedStats
	streamed, err := StreamFeeds(paths, WithParallelism(4), WithLenient(),
		WithFeedStats(&streamStats), WithSnapshot(path))
	if err != nil {
		t.Fatalf("StreamFeeds: %v", err)
	}
	if streamStats.MalformedSkipped != bad || streamed.MalformedSkipped() != bad {
		t.Errorf("stream skip counts (%d, %d) != %d written",
			streamStats.MalformedSkipped, streamed.MalformedSkipped(), bad)
	}
	var loadStats FeedStats
	loaded, err := LoadSnapshot(path, WithParallelism(4), WithFeedStats(&loadStats))
	if err != nil {
		t.Fatalf("LoadSnapshot: %v", err)
	}
	t.Cleanup(func() { loaded.Close() })
	if loadStats.MalformedSkipped != bad || loaded.MalformedSkipped() != bad {
		t.Errorf("snapshot skip counts (%d, %d) != %d written",
			loadStats.MalformedSkipped, loaded.MalformedSkipped(), bad)
	}
	if want, got := fullFingerprint(t, streamed), fullFingerprint(t, loaded); !bytes.Equal(want, got) {
		t.Error("lenient snapshot round trip changed the tables")
	}
}
