//go:build !race

// The constant-footprint acceptance check of the streaming pipeline:
// peak ingestion allocation must stay flat (within 1.5×, plus a small
// allocator slack) while feed volume grows 4× — the property that lets
// feeds larger than memory ingest. Race builds skip it: the detector's
// shadow memory distorts every heap measurement.

package osdiversity

import (
	"os"
	"runtime"
	"sync"
	"testing"

	"osdiversity/internal/nvdfeed"
)

// Footprint corpus volumes: the 4× set has exactly four times the
// entries of the 1× set over the same universe and year span.
const (
	footprint1x = 6_000
	footprint4x = 24_000
)

var (
	footprintOnce  sync.Once
	footprintErr   error
	footprintPaths map[int][]string // volume -> feed files
)

// footprintFeeds renders the two synthetic feed sets once per process.
func footprintFeeds(tb testing.TB) map[int][]string {
	tb.Helper()
	footprintOnce.Do(func() {
		footprintPaths = make(map[int][]string)
		for _, volume := range []int{footprint1x, footprint4x} {
			dir, err := os.MkdirTemp("", "osdiv-footprint-*")
			if err != nil {
				footprintErr = err
				return
			}
			paths, err := GenerateSyntheticFeeds(dir, SyntheticSpec{
				Entries: volume, Distros: 16, Seed: 11,
			}, WithParallelism(4))
			if err != nil {
				footprintErr = err
				return
			}
			footprintPaths[volume] = paths
		}
	})
	if footprintErr != nil {
		tb.Fatalf("footprint feeds: %v", footprintErr)
	}
	return footprintPaths
}

// footprintSampleEvery is the forced-GC sampling cadence of
// peakStreamFootprint: frequent enough that retention growing with
// volume shows up mid-stream, sparse enough that the forced collections
// stay a small fraction of the streaming time.
const footprintSampleEvery = 2048

// peakStreamFootprint drains a stream while sampling the live heap,
// returning the entry count and the peak retention above the pre-stream
// baseline.
//
// Each sample forces a collection first, so HeapAlloc reads live memory
// rather than live-plus-floating-garbage. Retained memory survives the
// GC, so growth with feed volume is still caught; without the forced
// GC the pacer lets floating garbage grow in proportion to the whole
// live heap, and resident fixtures held by *other* tests or benchmarks
// in the same process (the 100k study caches are tens of MB) would
// dominate the measurement and drown the streaming path's own
// footprint.
func peakStreamFootprint(tb testing.TB, paths []string, workers int) (entries int, peak uint64) {
	tb.Helper()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	base := ms.HeapAlloc
	st := nvdfeed.StreamFiles(paths, nvdfeed.Workers(workers))
	defer st.Close()
	var maxHeap uint64
	sample := func() {
		runtime.GC()
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > maxHeap {
			maxHeap = ms.HeapAlloc
		}
	}
	for range st.Entries() {
		entries++
		if entries%footprintSampleEvery == 0 {
			sample()
		}
	}
	if err := st.Err(); err != nil {
		tb.Fatalf("stream: %v", err)
	}
	sample()
	if maxHeap <= base {
		return entries, 0
	}
	return entries, maxHeap - base
}

// materializedLive measures the heap the materialized path retains once
// the whole 4× entry slice is resident — the reference the streaming
// peak must stay well under.
func materializedLive(tb testing.TB, paths []string) uint64 {
	tb.Helper()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	base := ms.HeapAlloc
	entries, err := nvdfeed.ReadFiles(paths, nvdfeed.Workers(4))
	if err != nil {
		tb.Fatalf("ReadFiles: %v", err)
	}
	runtime.GC()
	runtime.ReadMemStats(&ms)
	live := ms.HeapAlloc
	runtime.KeepAlive(entries)
	if live <= base {
		return 0
	}
	return live - base
}

// footprintSlack absorbs allocator and GC-timing noise in the flatness
// comparison: both volumes' peaks sit within a few MB of each other,
// while the materialized path grows by tens of MB per volume step.
const footprintSlack = 8 << 20

func checkFootprintFlat(tb testing.TB, workers int) (peak1, peak4 uint64) {
	feeds := footprintFeeds(tb)
	n1, peak1 := peakStreamFootprint(tb, feeds[footprint1x], workers)
	n4, peak4 := peakStreamFootprint(tb, feeds[footprint4x], workers)
	if n1 != footprint1x || n4 != footprint4x {
		tb.Fatalf("drained %d and %d entries, want %d and %d", n1, n4, footprint1x, footprint4x)
	}
	if limit := peak1 + peak1/2 + footprintSlack; peak4 > limit {
		tb.Fatalf("streaming peak grew with volume: 1x=%d bytes, 4x=%d bytes (limit %d) — not constant footprint",
			peak1, peak4, limit)
	}
	return peak1, peak4
}

// TestStreamIngestConstantFootprint is the acceptance gate: 4× the feed
// volume must not grow the streaming peak beyond 1.5× (plus slack), and
// the peak must stay under what the materialized path retains just to
// hold the 4× slice.
func TestStreamIngestConstantFootprint(t *testing.T) {
	if testing.Short() {
		t.Skip("renders two synthetic feed corpora")
	}
	peak1, peak4 := checkFootprintFlat(t, 4)
	live := materializedLive(t, footprintFeeds(t)[footprint4x])
	t.Logf("stream peak 1x=%dKB 4x=%dKB; materialized 4x live=%dKB", peak1>>10, peak4>>10, live>>10)
	if peak4 >= live {
		t.Errorf("streaming peak (%d bytes) not below materialized 4x live heap (%d bytes)", peak4, live)
	}
}

// BenchmarkStreamIngestFootprint is the CI form of the same check (its
// ns/op lands in BENCH_core.json under the regression gate); each
// iteration streams both volumes and fails on a non-flat peak.
func BenchmarkStreamIngestFootprint(b *testing.B) {
	footprintFeeds(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, peak4 := checkFootprintFlat(b, 4)
		b.ReportMetric(float64(peak4), "peak-bytes")
	}
}
