// Package osdiversity is the public face of the reproduction of
// "OS Diversity for Intrusion Tolerance: Myth or Reality?" (Garcia,
// Bessani, Gashi, Neves, Obelheiro — DSN 2011).
//
// The package wraps the internal pipeline — calibrated corpus
// generation, NVD 2.0 XML feeds, the embedded SQL store with the paper's
// schema, and the shared-vulnerability analysis — behind a small API of
// plain Go types:
//
//	feeds, _ := osdiversity.GenerateFeeds("feeds/")   // synthetic NVD
//	a, _ := osdiversity.LoadFeeds(feeds)              // parse + analyze
//	for _, row := range a.PairwiseOverlaps() {        // paper Table III
//	    fmt.Println(row.A, row.B, row.All, row.NoApp, row.Remote)
//	}
//	best := a.SelectReplicaSets(4, true, 2005)[0]     // paper §IV-C
//
// Operating systems are identified by their display names (for example
// "OpenBSD", "Windows2003"); OSNames lists them.
package osdiversity

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"osdiversity/internal/attack"
	"osdiversity/internal/classify"
	"osdiversity/internal/core"
	"osdiversity/internal/corpus"
	"osdiversity/internal/cve"
	"osdiversity/internal/nvdfeed"
	"osdiversity/internal/osmap"
	"osdiversity/internal/scenario"
	"osdiversity/internal/snapshot"
	"osdiversity/internal/vulndb"
)

// Option configures feed generation, loading and analysis.
type Option func(*config)

type config struct {
	workers   int
	engine    Engine
	universe  int // > 0 selects a synthetic n-distro universe for LoadFeeds
	lenient   bool
	feedStats *FeedStats
	snapshot  string // != "" tees a snapshot of the loaded study to this path
	shardIdx  int    // with shardN: 1-based year-range shard to keep
	shardN    int    // total shard count; 0 = unsharded
}

// WithParallelism sets the worker count used throughout the pipeline:
// corpus rendering, feed decoding, database ingestion and the sharded
// table queries. n <= 0 selects GOMAXPROCS; the default (no option) is
// the serial reference path.
func WithParallelism(n int) Option {
	return func(c *config) {
		if n <= 0 {
			n = runtime.GOMAXPROCS(0)
		}
		c.workers = n
	}
}

// Engine selects the analysis execution engine.
type Engine int

// The two engines. Both produce byte-identical tables; the bitset
// engine answers from a columnar posting-bitset index and is the
// default.
const (
	EngineBitset Engine = iota
	EngineScan
)

// WithEngine selects the execution engine for the table queries (the
// default is EngineBitset; EngineScan is the record-walk reference).
func WithEngine(e Engine) Option {
	return func(c *config) { c.engine = e }
}

// WithSyntheticUniverse makes LoadFeeds resolve products against the
// n-distro synthetic registry (as written by GenerateSyntheticFeeds)
// instead of the paper's 11-distro registry.
func WithSyntheticUniverse(n int) Option {
	return func(c *config) { c.universe = n }
}

// WithLenient makes the feed loaders skip entries that fail to decode
// or convert instead of failing the whole ingestion. Combine with
// WithFeedStats to account for every dropped entry.
func WithLenient() Option {
	return func(c *config) { c.lenient = true }
}

// FeedStats reports what a feed-loading call silently dropped. Pass one
// through WithFeedStats; it is (re)filled when the call returns.
type FeedStats struct {
	// MalformedSkipped counts entries the lenient reader dropped because
	// they failed to decode or convert (always 0 without WithLenient,
	// where a malformed entry fails the load instead).
	MalformedSkipped int
}

// WithYearShard restricts the materializing loaders (LoadFeeds,
// LoadCalibrated, LoadSynthetic, LoadDatabase) to year-range shard i of
// n, 1-based as `osdiv serve -shard i/N` spells it: contiguous chunk
// i-1 of the corpus's ascending year groups per corpus.ShardByYear. The
// n shards partition the corpus, so every additive aggregate of a
// sharded analysis merges with its siblings to the full-corpus figure —
// the contract the scatter-gather gateway (internal/gather) is built
// on. Out-of-range i/n fails the load; StreamFeeds and LoadSnapshot
// reject sharding (they never materialize the entry slice the split
// needs).
func WithYearShard(i, n int) Option {
	return func(c *config) { c.shardIdx, c.shardN = i, n }
}

// WithFeedStats makes LoadFeeds, StreamFeeds, ImportFeeds and
// ImportFeedsStream record their skip counters into st, so callers
// ingesting with WithLenient can report how many malformed entries were
// lost rather than losing the count with the internal readers.
func WithFeedStats(st *FeedStats) Option {
	return func(c *config) { c.feedStats = st }
}

func newConfig(opts []Option) config {
	c := config{workers: 1}
	for _, opt := range opts {
		opt(&c)
	}
	return c
}

// readerOptions translates the facade config into nvdfeed options,
// wiring the given skip aggregate into every reader the load opens.
func (c config) readerOptions(skips *nvdfeed.SkipStats) []nvdfeed.ReaderOption {
	opts := []nvdfeed.ReaderOption{nvdfeed.Workers(c.workers), nvdfeed.WithSkipStats(skips)}
	if c.lenient {
		opts = append(opts, nvdfeed.Lenient())
	}
	return opts
}

// noteSkips copies the aggregated reader skip counts into the caller's
// FeedStats, when one was attached.
func (c config) noteSkips(skips *nvdfeed.SkipStats) {
	if c.feedStats != nil {
		c.feedStats.MalformedSkipped = skips.Skipped()
	}
}

// shardEntries applies the WithYearShard slice, validating the spec.
func (c config) shardEntries(entries []*cve.Entry) ([]*cve.Entry, error) {
	if c.shardN == 0 && c.shardIdx == 0 {
		return entries, nil
	}
	if c.shardN < 1 || c.shardIdx < 1 || c.shardIdx > c.shardN {
		return nil, fmt.Errorf("osdiversity: invalid shard %d/%d: need 1 <= i <= n", c.shardIdx, c.shardN)
	}
	return corpus.ShardByYear(entries, c.shardIdx-1, c.shardN), nil
}

// sharded reports whether WithYearShard was requested at all.
func (c config) sharded() bool { return c.shardN != 0 || c.shardIdx != 0 }

// studyOptions translates the facade config into core options.
func (c config) studyOptions() []core.Option {
	opts := []core.Option{core.WithParallelism(c.workers)}
	if c.engine == EngineScan {
		opts = append(opts, core.WithEngine(core.EngineScan))
	}
	if c.universe > 0 {
		opts = append(opts, core.WithRegistry(osmap.NewSyntheticRegistry(c.universe)))
	}
	return opts
}

// OSNames returns the 11 distribution names of the study, in the paper's
// presentation order.
func OSNames() []string {
	var out []string
	for _, d := range osmap.Distros() {
		out = append(out, d.String())
	}
	return out
}

// FamilyOf returns the OS family of a distribution name ("BSD",
// "Solaris", "Linux" or "Windows").
func FamilyOf(osName string) (string, error) {
	d, err := osmap.ParseDistro(osName)
	if err != nil {
		return "", err
	}
	return d.Family().String(), nil
}

// GenerateFeeds writes the calibrated synthetic NVD data feeds (one
// gzip-compressed XML file per publication year, like NVD distributes
// them) into dir and returns the file paths. With WithParallelism the
// corpus renders on a worker pool and the per-year files are written
// concurrently.
func GenerateFeeds(dir string, opts ...Option) ([]string, error) {
	cfg := newConfig(opts)
	c, err := corpus.Generate(corpus.WithParallelism(cfg.workers))
	if err != nil {
		return nil, err
	}
	return writeFeedsByYear(dir, c.Entries, cfg.workers)
}

// writeFeedsByYear splits entries into per-year feed files (like NVD
// distributes them), writing up to `workers` files concurrently.
func writeFeedsByYear(dir string, entries []*cve.Entry, workers int) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("osdiversity: %w", err)
	}
	groups := corpus.SplitByYear(entries)
	paths := make([]string, len(groups))
	errs := make([]error, len(groups))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, g := range groups {
		paths[i] = filepath.Join(dir, fmt.Sprintf("nvdcve-2.0-%d.xml.gz", g.Year))
		wg.Add(1)
		go func(i int, g corpus.YearGroup) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			errs[i] = nvdfeed.WriteFile(paths[i], fmt.Sprintf("CVE-%d", g.Year), g.Entries)
		}(i, g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return paths, nil
}

// Analysis answers the paper's questions over one ingested data set.
type Analysis struct {
	study *core.Study

	// Provenance for /corpus and the -json printers: where the corpus
	// came from, when it was built (or snapshotted), and the snapshot
	// digest when warm-started from one. See snapshot.go.
	source           string
	epoch            time.Time
	snapshotDigest   string
	malformedSkipped int

	// snap keeps the mmap'd snapshot alive while its columns back the
	// study; nil for feed-built analyses.
	snap *snapshot.Snapshot
}

// LoadFeeds parses NVD XML feed files (plain or .gz) and builds the
// analysis. With WithParallelism files decode concurrently and the
// analysis queries run on the sharded engine. The decode runs over the
// streaming pipeline (materializing the entries once for the digest);
// StreamFeeds skips even that materialization.
func LoadFeeds(paths []string, opts ...Option) (*Analysis, error) {
	cfg := newConfig(opts)
	skips := &nvdfeed.SkipStats{}
	entries, err := nvdfeed.ReadFiles(paths, cfg.readerOptions(skips)...)
	if err != nil {
		return nil, err
	}
	if entries, err = cfg.shardEntries(entries); err != nil {
		return nil, err
	}
	cfg.noteSkips(skips)
	return cfg.finishAnalysis(core.NewStudy(entries, cfg.studyOptions()...), "feeds", skips.Skipped())
}

// streamBatch is how many decoded entries StreamFeeds hands to the
// incremental Study builder at a time.
const streamBatch = 512

// StreamFeeds builds the analysis end to end over the bounded streaming
// pipeline: entries flow from the XML tokenizers through fixed-capacity
// channels into the incremental Study builder in streamBatch chunks, so
// ingestion memory stays constant no matter how large the feed set is
// (only the compact per-entry digests accumulate). The resulting
// analysis is identical to LoadFeeds' — byte-identical tables at any
// worker count.
func StreamFeeds(paths []string, opts ...Option) (*Analysis, error) {
	cfg := newConfig(opts)
	if cfg.sharded() {
		return nil, fmt.Errorf("osdiversity: WithYearShard needs materialized entries; use LoadFeeds")
	}
	skips := &nvdfeed.SkipStats{}
	st := nvdfeed.StreamFiles(paths, cfg.readerOptions(skips)...)
	defer st.Close()
	b := core.NewBuilder(cfg.studyOptions()...)
	batch := make([]*cve.Entry, 0, streamBatch)
	for e := range st.Entries() {
		batch = append(batch, e)
		if len(batch) == streamBatch {
			b.Add(batch...)
			batch = batch[:0]
		}
	}
	if err := st.Err(); err != nil {
		return nil, err
	}
	b.Add(batch...)
	cfg.noteSkips(skips)
	return cfg.finishAnalysis(b.Finish(), "feeds", skips.Skipped())
}

// LoadCalibrated builds the analysis directly over the calibrated
// synthetic corpus, skipping the XML round trip.
func LoadCalibrated(opts ...Option) (*Analysis, error) {
	cfg := newConfig(opts)
	c, err := corpus.Generate(corpus.WithParallelism(cfg.workers))
	if err != nil {
		return nil, err
	}
	entries, err := cfg.shardEntries(c.Entries)
	if err != nil {
		return nil, err
	}
	return cfg.finishAnalysis(core.NewStudy(entries, cfg.studyOptions()...), "calibrated", 0)
}

// SyntheticSpec parameterizes the synthetic "modern NVD" corpus: a
// deterministic, seeded population of Entries vulnerabilities over a
// Distros-wide universe (the paper's 11 clusters plus generated
// distributions), published FromYear..ToYear. Zero fields select the
// defaults (100k entries, 32 distros, 2002..2025).
type SyntheticSpec struct {
	Entries  int
	Distros  int
	Seed     uint64
	FromYear int
	ToYear   int
}

func (sp SyntheticSpec) corpusConfig(workers int) corpus.SyntheticConfig {
	return corpus.SyntheticConfig{
		Entries:  sp.Entries,
		Distros:  sp.Distros,
		Seed:     sp.Seed,
		FromYear: sp.FromYear,
		ToYear:   sp.ToYear,
		Workers:  workers,
	}
}

// LoadSynthetic generates the synthetic corpus and builds the analysis
// over its universe, skipping the XML round trip.
func LoadSynthetic(spec SyntheticSpec, opts ...Option) (*Analysis, error) {
	cfg := newConfig(opts)
	sc, err := corpus.GenerateSynthetic(spec.corpusConfig(cfg.workers))
	if err != nil {
		return nil, err
	}
	entries, err := cfg.shardEntries(sc.Entries)
	if err != nil {
		return nil, err
	}
	studyOpts := append(cfg.studyOptions(), core.WithRegistry(sc.Registry))
	st := core.NewStudy(entries, studyOpts...)
	return cfg.finishAnalysis(st, fmt.Sprintf("synthetic:%d", len(st.Distros())), 0)
}

// GenerateSyntheticFeeds writes the synthetic corpus as per-year NVD 2.0
// XML feeds into dir and returns the file paths. Reload them with
// LoadFeeds(..., WithSyntheticUniverse(spec.Distros)).
func GenerateSyntheticFeeds(dir string, spec SyntheticSpec, opts ...Option) ([]string, error) {
	cfg := newConfig(opts)
	sc, err := corpus.GenerateSynthetic(spec.corpusConfig(cfg.workers))
	if err != nil {
		return nil, err
	}
	return writeFeedsByYear(dir, sc.Entries, cfg.workers)
}

// ImportFeeds parses feeds into the paper's SQL schema and persists the
// database at dbPath. Returns (stored, skipped). With WithParallelism
// the feeds decode concurrently and the entries reach the store through
// the parallel-digest, batched-insert pipeline.
func ImportFeeds(dbPath string, feedPaths []string, opts ...Option) (int, int, error) {
	cfg := newConfig(opts)
	db, err := vulndb.Create()
	if err != nil {
		return 0, 0, err
	}
	skips := &nvdfeed.SkipStats{}
	entries, err := nvdfeed.ReadFiles(feedPaths, cfg.readerOptions(skips)...)
	if err != nil {
		return 0, 0, err
	}
	stored, skipped, err := db.LoadEntriesParallel(entries, classify.NewClassifier(), cfg.workers)
	if err != nil {
		return stored, skipped, err
	}
	cfg.noteSkips(skips)
	if err := db.Save(dbPath); err != nil {
		return stored, skipped, err
	}
	if cfg.snapshot != "" {
		st := core.NewStudy(entries, cfg.studyOptions()...)
		if _, err := cfg.finishAnalysis(st, "feeds", skips.Skipped()); err != nil {
			return stored, skipped, err
		}
	}
	return stored, skipped, nil
}

// ImportFeedsStream is ImportFeeds over the bounded streaming pipeline:
// decoded entries flow straight from the feed channels into the store's
// chunked insert loop without ever materializing the full entry slice,
// so feeds larger than memory import with constant ingestion footprint.
// The persisted database is byte-identical to ImportFeeds' for the same
// feed set at any worker count.
func ImportFeedsStream(dbPath string, feedPaths []string, opts ...Option) (int, int, error) {
	cfg := newConfig(opts)
	db, err := vulndb.Create()
	if err != nil {
		return 0, 0, err
	}
	skips := &nvdfeed.SkipStats{}
	st := nvdfeed.StreamFiles(feedPaths, cfg.readerOptions(skips)...)
	defer st.Close()

	// With a snapshot requested, the entry stream tees through the
	// incremental Study builder on its way to the store — one pass over
	// the feeds feeds both sinks, still in streamBatch chunks.
	src := st.Entries()
	var b *core.Builder
	var tee sync.WaitGroup
	if cfg.snapshot != "" {
		b = core.NewBuilder(cfg.studyOptions()...)
		in := src // the goroutine must not see the src = teed reassignment below
		teed := make(chan *cve.Entry, streamBatch)
		tee.Add(1)
		go func() {
			defer tee.Done()
			defer close(teed)
			batch := make([]*cve.Entry, 0, streamBatch)
			for e := range in {
				teed <- e
				batch = append(batch, e)
				if len(batch) == streamBatch {
					b.Add(batch...)
					batch = batch[:0]
				}
			}
			b.Add(batch...)
		}()
		src = teed
	}

	stored, skipped, err := db.LoadEntriesStream(src, classify.NewClassifier(), cfg.workers)
	if err != nil {
		if cfg.snapshot != "" {
			// Unblock the tee goroutine; st.Close (deferred) stops the
			// producers, so the drain terminates.
			go func() {
				for range src {
				}
			}()
		}
		return stored, skipped, err
	}
	tee.Wait()
	if err := st.Err(); err != nil {
		return stored, skipped, err
	}
	cfg.noteSkips(skips)
	if err := db.Save(dbPath); err != nil {
		return stored, skipped, err
	}
	if cfg.snapshot != "" {
		if _, err := cfg.finishAnalysis(b.Finish(), "feeds", skips.Skipped()); err != nil {
			return stored, skipped, err
		}
	}
	return stored, skipped, nil
}

// SQLPairShared is one cell of the SQL-computed Table III matrix.
type SQLPairShared struct {
	A, B   string
	Shared int
}

// SQLPairwiseShared computes the paper's Table III shared-vulnerability
// matrix directly in the embedded SQL engine over a database produced
// by ImportFeeds: one grouped hash-join plan answers every OS pair,
// without reconstructing entries or building a Study. With
// WithParallelism the join probes shard across the worker pool. The
// counts are byte-identical to PairwiseOverlaps' All column.
func SQLPairwiseShared(dbPath string, opts ...Option) ([]SQLPairShared, error) {
	cfg := newConfig(opts)
	db, err := vulndb.Open(dbPath)
	if err != nil {
		return nil, err
	}
	db.SetParallelism(cfg.workers)
	cells, err := db.SharedMatrix()
	if err != nil {
		return nil, err
	}
	out := make([]SQLPairShared, 0, len(cells))
	for _, c := range cells {
		out = append(out, SQLPairShared{A: c.A, B: c.B, Shared: c.Shared})
	}
	return out, nil
}

// LoadDatabase builds the analysis from a database produced by
// ImportFeeds.
func LoadDatabase(dbPath string, opts ...Option) (*Analysis, error) {
	cfg := newConfig(opts)
	db, err := vulndb.Open(dbPath)
	if err != nil {
		return nil, err
	}
	entries, err := db.Entries()
	if err != nil {
		return nil, err
	}
	if entries, err = cfg.shardEntries(entries); err != nil {
		return nil, err
	}
	return cfg.finishAnalysis(core.NewStudy(entries, cfg.studyOptions()...), "db", 0)
}

// OSNames returns the distribution names of this analysis's universe in
// presentation order (the paper's 11 for the default registry, more for
// synthetic universes).
func (a *Analysis) OSNames() []string {
	var out []string
	for _, d := range a.study.Distros() {
		out = append(out, d.String())
	}
	return out
}

// ValidCount returns the number of distinct valid vulnerabilities.
func (a *Analysis) ValidCount() int { return a.study.ValidEntries() }

// YearRange returns the [min, max] publication years of the valid data
// set (both zero on an empty analysis).
func (a *Analysis) YearRange() (lo, hi int) { return a.study.YearRange() }

// Parallelism reports the effective worker count of the analysis.
func (a *Analysis) Parallelism() int { return a.study.Parallelism() }

// ValidityRow is one row of the paper's Table I.
type ValidityRow struct {
	OS          string
	Valid       int
	Unknown     int
	Unspecified int
	Disputed    int
}

// ValidityTable reproduces Table I; the second result is the distinct
// totals row.
func (a *Analysis) ValidityTable() ([]ValidityRow, ValidityRow) {
	rows, distinct := a.study.ValidityTable()
	out := make([]ValidityRow, 0, len(rows))
	for _, r := range rows {
		out = append(out, ValidityRow{
			OS: r.Distro.String(), Valid: r.Valid,
			Unknown: r.Unknown, Unspecified: r.Unspecified, Disputed: r.Disputed,
		})
	}
	return out, ValidityRow{OS: "# distinct", Valid: distinct.Valid,
		Unknown: distinct.Unknown, Unspecified: distinct.Unspecified, Disputed: distinct.Disputed}
}

// ClassRow is one row of the paper's Table II.
type ClassRow struct {
	OS      string
	Driver  int
	Kernel  int
	SysSoft int
	App     int
}

// ClassDistinctCounts returns the raw, additive half of Table II's
// shares: distinct valid vulnerability counts per component class
// (Driver, Kernel, SysSoft, App) and the valid total. Sum both across
// shards and finalize with core.ClassShares to reproduce ClassTable's
// percentages.
func (a *Analysis) ClassDistinctCounts() (counts [4]int, n int) {
	return a.study.ClassDistinct()
}

// ClassTable reproduces Table II. The shares are the percentage of
// distinct vulnerabilities per class (Driver, Kernel, SysSoft, App).
func (a *Analysis) ClassTable() ([]ClassRow, [4]float64) {
	rows, shares := a.study.ClassTable()
	out := make([]ClassRow, 0, len(rows))
	for _, r := range rows {
		out = append(out, ClassRow{
			OS: r.Distro.String(), Driver: r.Driver, Kernel: r.Kernel,
			SysSoft: r.SysSoft, App: r.App,
		})
	}
	return out, shares
}

// PairOverlap is one row of the paper's Table III.
type PairOverlap struct {
	A, B string
	// Per-OS totals under the three profiles.
	TotalA, TotalB     [3]int
	All, NoApp, Remote int
}

// PairwiseOverlaps reproduces Table III over the universe's pairs (all
// 55 for the paper's 11 distributions).
func (a *Analysis) PairwiseOverlaps() []PairOverlap {
	var out []PairOverlap
	totals := make(map[osmap.Distro][3]int)
	for _, d := range a.study.Distros() {
		totals[d] = [3]int{
			a.study.Total(d, core.FatServer),
			a.study.Total(d, core.ThinServer),
			a.study.Total(d, core.IsolatedThinServer),
		}
	}
	for _, p := range a.study.Pairs() {
		out = append(out, PairOverlap{
			A: p.A.String(), B: p.B.String(),
			TotalA: totals[p.A], TotalB: totals[p.B],
			All:    a.study.Overlap(p, core.FatServer),
			NoApp:  a.study.Overlap(p, core.ThinServer),
			Remote: a.study.Overlap(p, core.IsolatedThinServer),
		})
	}
	return out
}

// PartRow is one row of the paper's Table IV.
type PartRow struct {
	A, B    string
	Driver  int
	Kernel  int
	SysSoft int
	Total   int
}

// PartBreakdowns reproduces Table IV: Isolated-Thin-Server pairs with a
// non-zero overlap, broken down by component class, largest first.
func (a *Analysis) PartBreakdowns() []PartRow {
	var out []PartRow
	for _, p := range a.study.Pairs() {
		parts := a.study.PartBreakdown(p)
		if parts.Total() == 0 {
			continue
		}
		out = append(out, PartRow{
			A: p.A.String(), B: p.B.String(),
			Driver: parts.Driver, Kernel: parts.Kernel, SysSoft: parts.SysSoft,
			Total: parts.Total(),
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Total > out[j].Total })
	return out
}

// PartBreakdownsAll returns every pair's Table IV row in pair
// presentation order, zero rows included and unsorted — the raw,
// additive form PartBreakdowns derives from. A scatter-gather merge
// sums the rows per pair index across shards, then filters and sorts
// exactly like PartBreakdowns to reproduce its bytes.
func (a *Analysis) PartBreakdownsAll() []PartRow {
	pairs := a.study.Pairs()
	out := make([]PartRow, 0, len(pairs))
	for _, p := range pairs {
		parts := a.study.PartBreakdown(p)
		out = append(out, PartRow{
			A: p.A.String(), B: p.B.String(),
			Driver: parts.Driver, Kernel: parts.Kernel, SysSoft: parts.SysSoft,
			Total: parts.Total(),
		})
	}
	return out
}

// PeriodCell is one cell of the paper's Table V.
type PeriodCell struct {
	A, B     string
	History  int
	Observed int
}

// HistoryObserved reproduces Table V over the 8 history-eligible OSes,
// split at splitYear (the paper uses 2005).
func (a *Analysis) HistoryObserved(splitYear int) []PeriodCell {
	var out []PeriodCell
	for _, p := range osmap.PairsOf(osmap.HistoryEligible()) {
		pc := a.study.PeriodSplit(p, splitYear)
		out = append(out, PeriodCell{A: p.A.String(), B: p.B.String(),
			History: pc.History, Observed: pc.Observed})
	}
	return out
}

// TemporalSeries reproduces one Figure 2 curve: publication counts per
// year for one OS.
func (a *Analysis) TemporalSeries(osName string) (map[int]int, error) {
	d, err := osmap.ParseDistro(osName)
	if err != nil {
		return nil, err
	}
	return a.study.TemporalSeries(d), nil
}

// ReplicaSet is one ranked replica configuration (§IV-C).
type ReplicaSet struct {
	Members []string
	Cost    int
}

// SelectReplicaSets ranks all size-k subsets of the history-eligible
// OSes by shared vulnerabilities up to toYear, ascending. With
// onePerFamily, sets drawing two OSes from one family are excluded
// (the constraint under which the paper's printed top-3 is optimal).
func (a *Analysis) SelectReplicaSets(k int, onePerFamily bool, toYear int) []ReplicaSet {
	strategy := core.MinPairSum
	if onePerFamily {
		strategy = core.OnePerFamily
	}
	ranked := a.study.RankReplicaSets(osmap.HistoryEligible(), k, strategy,
		core.SelectionWindow{ToYear: toYear})
	out := make([]ReplicaSet, 0, len(ranked))
	for _, r := range ranked {
		rs := ReplicaSet{Cost: r.Cost}
		for _, d := range r.Members {
			rs.Members = append(rs.Members, d.String())
		}
		out = append(out, rs)
	}
	return out
}

// EvaluateConfiguration reproduces one Figure 3 bar pair: the shared
// count of a configuration over the history window and the observed
// window. A single-member configuration models identical replicas.
func (a *Analysis) EvaluateConfiguration(osNames []string, splitYear int) (history, observed int, err error) {
	ds, err := parseDistros(osNames)
	if err != nil {
		return 0, 0, err
	}
	history, observed = a.study.EvaluateConfiguration(ds, splitYear)
	return history, observed, nil
}

// KWiseProducts returns, for each k, the number of distinct valid
// vulnerabilities affecting at least k OS products (§IV-B).
func (a *Analysis) KWiseProducts() map[int]int {
	return a.study.KWiseProducts(core.FatServer)
}

// MostShared returns the CVE identifiers of the n vulnerabilities
// affecting the most OS products.
func (a *Analysis) MostShared(n int) []string {
	var out []string
	for _, e := range a.study.MostSharedEntries(n) {
		out = append(out, e.ID.String())
	}
	return out
}

// SharedCount is one most-shared listing element in mergeable form.
type SharedCount struct {
	ID       string
	Products int
}

// MostSharedCounts returns the first n elements of the most-shared
// order with their OS-product counts — the additive form of MostShared.
// Per-shard prefixes merge to the global listing under the (count desc,
// ID asc) order (core.MergeMostShared).
func (a *Analysis) MostSharedCounts(n int) []SharedCount {
	raw := a.study.MostSharedCounts(n)
	out := make([]SharedCount, 0, len(raw))
	for _, c := range raw {
		out = append(out, SharedCount{ID: c.ID.String(), Products: c.Products})
	}
	return out
}

// PairCost is one history-eligible pair's shared-vulnerability count
// inside a selection window — one additive term of §IV-C's set cost.
type PairCost struct {
	A, B   string
	Shared int
}

// OSCost is one history-eligible distribution's total valid count inside
// a selection window — the homogeneous one-member set's cost.
type OSCost struct {
	OS    string
	Total int
}

// SelectionCosts returns the additive cost vectors behind
// SelectReplicaSets for the window ending at toYear: every
// history-eligible pair's windowed shared count (in osmap.PairsOf
// order) and every history-eligible distribution's windowed total.
// Shard-summed vectors fed to core.RankSetsFromCosts reproduce
// SelectReplicaSets' ranking exactly.
func (a *Analysis) SelectionCosts(toYear int) ([]PairCost, []OSCost) {
	w := core.SelectionWindow{ToYear: toYear}
	elig := osmap.HistoryEligible()
	pairs := osmap.PairsOf(elig)
	pc := make([]PairCost, 0, len(pairs))
	for _, p := range pairs {
		pc = append(pc, PairCost{A: p.A.String(), B: p.B.String(),
			Shared: a.study.PairSharedInWindow(p, w)})
	}
	sc := make([]OSCost, 0, len(elig))
	for _, d := range elig {
		sc = append(sc, OSCost{OS: d.String(),
			Total: a.study.SetCost([]osmap.Distro{d}, w)})
	}
	return pc, sc
}

// FilterReduction returns the §IV-E(1) statistic: the average percentage
// reduction of pairwise overlap from the Fat Server to the Isolated Thin
// Server profile.
func (a *Analysis) FilterReduction() float64 {
	return a.study.FilterReduction(core.FatServer, core.IsolatedThinServer)
}

// ReleaseOverlap reproduces one Table VI cell, identifying releases by
// OS name and version string (for example "Debian", "4.0").
func (a *Analysis) ReleaseOverlap(osA, verA, osB, verB string) (int, error) {
	da, err := osmap.ParseDistro(osA)
	if err != nil {
		return 0, err
	}
	db, err := osmap.ParseDistro(osB)
	if err != nil {
		return 0, err
	}
	return a.study.ReleaseOverlap(da, verA, db, verB), nil
}

// AttackSummary aggregates a Monte Carlo attack batch (the
// reproduction's extension experiment).
type AttackSummary struct {
	Name        string
	MeanTTC     float64
	MedianTTC   float64
	SharedFatal float64
	Unbroken    int
}

// SimulateAttack runs the sequential-campaign adversary of
// internal/attack against a replica configuration with fault threshold
// f (the configuration needs 3f+1 members).
func (a *Analysis) SimulateAttack(name string, osNames []string, f, trials int) (AttackSummary, error) {
	ds, err := parseDistros(osNames)
	if err != nil {
		return AttackSummary{}, err
	}
	model := attack.NewModel(a.study, core.IsolatedThinServer)
	model.SetParallelism(a.study.Parallelism())
	sum, err := model.MonteCarlo(attack.Scenario{Name: name, F: f, OSes: ds}, trials)
	if err != nil {
		return AttackSummary{}, err
	}
	return AttackSummary{
		Name: name, MeanTTC: sum.MeanTTC, MedianTTC: sum.MedianTTC,
		SharedFatal: sum.SharedFatal, Unbroken: sum.Unbroken,
	}, nil
}

// DiversityGain compares mean time-to-compromise of a diverse
// configuration against a homogeneous baseline of baselineOS.
func (a *Analysis) DiversityGain(baselineOS string, diverse []string, f, trials int) (float64, error) {
	base, err := parseDistros([]string{baselineOS})
	if err != nil {
		return 0, err
	}
	ds, err := parseDistros(diverse)
	if err != nil {
		return 0, err
	}
	homog := make([]osmap.Distro, 3*f+1)
	for i := range homog {
		homog[i] = base[0]
	}
	model := attack.NewModel(a.study, core.IsolatedThinServer)
	model.SetParallelism(a.study.Parallelism())
	return model.Gain(
		attack.Scenario{Name: "homogeneous", F: f, OSes: homog},
		attack.Scenario{Name: "diverse", F: f, OSes: ds},
		trials)
}

// RecommendSpec parameterizes the dynamic-diversity schedule search
// (internal/scenario). Zero fields take calibrated defaults: the
// paper's eight history-eligible distributions, F=1, two temporal
// windows spanning the corpus years, rotation interval 2, 200 trials,
// seed 1, beam 4, top 3 reported candidates.
type RecommendSpec struct {
	Universe []string
	F        int
	Windows  int
	FromYear int
	ToYear   int
	Interval float64
	Trials   int
	Seed     uint64
	Beam     int
	Top      int
}

// CanonRecommendSpec fills defaults, clamps bounds against the corpus
// year range, and validates the spec. It is idempotent, so callers can
// canonicalize once for cache keys and pass the result to Recommend.
func (a *Analysis) CanonRecommendSpec(spec RecommendSpec) (RecommendSpec, error) {
	out := spec
	if len(out.Universe) == 0 {
		for _, d := range osmap.HistoryEligible() {
			out.Universe = append(out.Universe, d.String())
		}
	} else {
		ds, err := parseDistros(out.Universe)
		if err != nil {
			return RecommendSpec{}, err
		}
		canon := make([]string, len(ds))
		for i, d := range ds {
			canon[i] = d.String()
		}
		out.Universe = canon
	}
	if out.F == 0 {
		out.F = 1
	}
	if out.F < 1 || out.F > 5 {
		return RecommendSpec{}, fmt.Errorf("osdiversity: F must be in [1, 5], got %d", out.F)
	}
	if n := 3*out.F + 1; len(out.Universe) < n {
		return RecommendSpec{}, fmt.Errorf("osdiversity: universe of %d cannot fill %d replicas for F=%d", len(out.Universe), n, out.F)
	}
	lo, hi := a.study.YearRange()
	if out.FromYear == 0 {
		out.FromYear = lo
	}
	if out.ToYear == 0 {
		out.ToYear = hi
	}
	out.FromYear = clampYear(out.FromYear, lo, hi)
	out.ToYear = clampYear(out.ToYear, lo, hi)
	if out.FromYear > out.ToYear {
		return RecommendSpec{}, fmt.Errorf("osdiversity: from year %d after to year %d", out.FromYear, out.ToYear)
	}
	if out.Windows == 0 {
		out.Windows = 2
	}
	if out.Windows < 1 || out.Windows > 8 {
		return RecommendSpec{}, fmt.Errorf("osdiversity: windows must be in [1, 8], got %d", out.Windows)
	}
	if span := out.ToYear - out.FromYear + 1; out.Windows > span {
		out.Windows = span
	}
	if out.Interval == 0 {
		out.Interval = 2
	}
	if out.Interval <= 0 {
		return RecommendSpec{}, fmt.Errorf("osdiversity: interval must be positive, got %v", out.Interval)
	}
	if out.Trials == 0 {
		out.Trials = 200
	}
	if out.Trials < 1 || out.Trials > 100000 {
		return RecommendSpec{}, fmt.Errorf("osdiversity: trials must be in [1, 100000], got %d", out.Trials)
	}
	if out.Seed == 0 {
		out.Seed = 1
	}
	if out.Beam == 0 {
		out.Beam = 4
	}
	if out.Beam < 1 || out.Beam > 16 {
		return RecommendSpec{}, fmt.Errorf("osdiversity: beam must be in [1, 16], got %d", out.Beam)
	}
	// Keep beam^windows inside the scenario engine's schedule cap.
	for pow(out.Beam, out.Windows) > 1024 {
		out.Beam--
	}
	if out.Top == 0 {
		out.Top = 3
	}
	if out.Top < 1 || out.Top > 32 {
		return RecommendSpec{}, fmt.Errorf("osdiversity: top must be in [1, 32], got %d", out.Top)
	}
	return out, nil
}

func clampYear(y, lo, hi int) int {
	if y < lo {
		return lo
	}
	if y > hi {
		return hi
	}
	return y
}

func pow(b, e int) int {
	n := 1
	for i := 0; i < e; i++ {
		if n *= b; n > 1024 {
			return n
		}
	}
	return n
}

// RecommendWindow is one temporal window of a recommended schedule.
type RecommendWindow struct {
	FromYear int
	ToYear   int
	OSes     []string
	Cost     int
}

// RecommendCandidate is one ranked rotation schedule.
type RecommendCandidate struct {
	Survival float64
	Cost     int
	Windows  []RecommendWindow
}

// Recommendation is a completed dynamic-diversity search: the
// canonicalized spec it answered, the top candidates ranked by Monte
// Carlo survival (ties by static cost, then enumeration order), and
// the BFT replay verdict for the winner.
type Recommendation struct {
	Spec       RecommendSpec
	Replicas   int
	Evaluated  int
	Candidates []RecommendCandidate
	Validated  bool
	Violations []string
}

// Recommend searches OS assignments and rotation schedules maximizing
// survival under the Monte Carlo attack model (internal/scenario) and
// validates the winner on the BFT substrate. Trials run on the
// configured worker pool with per-candidate seed streams, so the
// result is identical at any parallelism.
func (a *Analysis) Recommend(spec RecommendSpec) (Recommendation, error) {
	canon, err := a.CanonRecommendSpec(spec)
	if err != nil {
		return Recommendation{}, err
	}
	ds, err := parseDistros(canon.Universe)
	if err != nil {
		return Recommendation{}, err
	}
	eng := scenario.NewEngine(a.study, core.IsolatedThinServer)
	eng.SetParallelism(a.study.Parallelism())
	res, err := eng.Search(scenario.Spec{
		F:        canon.F,
		Universe: ds,
		Windows:  splitWindows(canon.FromYear, canon.ToYear, canon.Windows),
		Interval: canon.Interval,
		Trials:   canon.Trials,
		Seed:     canon.Seed,
		Beam:     canon.Beam,
	})
	if err != nil {
		return Recommendation{}, err
	}
	rec := Recommendation{
		Spec:       canon,
		Replicas:   3*canon.F + 1,
		Evaluated:  res.Evaluated,
		Candidates: []RecommendCandidate{},
		Validated:  res.Validated,
		Violations: append([]string{}, res.Violations...),
	}
	top := canon.Top
	if top > len(res.Candidates) {
		top = len(res.Candidates)
	}
	for _, c := range res.Candidates[:top] {
		rc := RecommendCandidate{
			Survival: c.Survival,
			Cost:     c.Cost,
			Windows:  make([]RecommendWindow, 0, len(c.Windows)),
		}
		for _, w := range c.Windows {
			names := make([]string, len(w.OSes))
			for i, d := range w.OSes {
				names[i] = d.String()
			}
			rc.Windows = append(rc.Windows, RecommendWindow{
				FromYear: w.Window.FromYear,
				ToYear:   w.Window.ToYear,
				OSes:     names,
				Cost:     w.Cost,
			})
		}
		rec.Candidates = append(rec.Candidates, rc)
	}
	return rec, nil
}

// splitWindows partitions [from, to] into n contiguous year windows;
// earlier windows absorb the remainder years.
func splitWindows(from, to, n int) []core.SelectionWindow {
	span := to - from + 1
	base, rem := span/n, span%n
	out := make([]core.SelectionWindow, 0, n)
	start := from
	for i := 0; i < n; i++ {
		length := base
		if i < rem {
			length++
		}
		out = append(out, core.SelectionWindow{FromYear: start, ToYear: start + length - 1})
		start += length
	}
	return out
}

func parseDistros(names []string) ([]osmap.Distro, error) {
	out := make([]osmap.Distro, 0, len(names))
	for _, n := range names {
		d, err := osmap.ParseDistro(n)
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}
