package osdiversity

// The benchmark harness: one benchmark per experiment of the paper's
// evaluation (E1-E11 per DESIGN.md's index, plus the E12 extension).
// Each benchmark regenerates its table or figure from the calibrated
// corpus through the real analysis pipeline and asserts the paper's
// numbers, so `go test -bench=.` doubles as the reproduction script.

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"osdiversity/internal/attack"
	"osdiversity/internal/classify"
	"osdiversity/internal/core"
	"osdiversity/internal/corpus"
	"osdiversity/internal/cve"
	"osdiversity/internal/nvdfeed"
	"osdiversity/internal/osmap"
	"osdiversity/internal/paperdata"
	"osdiversity/internal/stats"
	"osdiversity/internal/vulndb"
)

var (
	benchStudy         *core.Study
	benchStudyParallel *core.Study
	benchStudyBitset   *core.Study
)

func studyForBench(b *testing.B) *core.Study {
	b.Helper()
	if benchStudy == nil {
		c, err := corpus.Generate()
		if err != nil {
			b.Fatalf("corpus.Generate: %v", err)
		}
		// The serial scan reference (the seed's algorithms).
		benchStudy = core.NewStudy(c.Entries, core.WithEngine(core.EngineScan))
	}
	return benchStudy
}

// benchWorkers is the worker count of the sharded-engine benchmarks
// (the acceptance configuration).
const benchWorkers = 4

func studyForBenchParallel(b *testing.B) *core.Study {
	b.Helper()
	if benchStudyParallel == nil {
		c, err := corpus.Generate()
		if err != nil {
			b.Fatalf("corpus.Generate: %v", err)
		}
		benchStudyParallel = core.NewStudy(c.Entries,
			core.WithEngine(core.EngineScan), core.WithParallelism(benchWorkers))
	}
	return benchStudyParallel
}

func studyForBenchBitset(b *testing.B) *core.Study {
	b.Helper()
	if benchStudyBitset == nil {
		c, err := corpus.Generate()
		if err != nil {
			b.Fatalf("corpus.Generate: %v", err)
		}
		benchStudyBitset = core.NewStudy(c.Entries, core.WithParallelism(benchWorkers))
	}
	return benchStudyBitset
}

// BenchmarkTable1Distribution regenerates Table I (E1).
func BenchmarkTable1Distribution(b *testing.B) {
	s := studyForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, distinct := s.ValidityTable()
		if distinct.Valid != paperdata.DistinctValid || len(rows) != osmap.NumDistros {
			b.Fatalf("Table I mismatch: %d distinct", distinct.Valid)
		}
	}
}

// BenchmarkTable2Classification regenerates Table II (E2).
func BenchmarkTable2Classification(b *testing.B) {
	s := studyForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, _ := s.ClassTable()
		for _, row := range rows {
			want := paperdata.ClassTable[row.Distro]
			if row.Kernel != want.Kernel || row.App != want.App {
				b.Fatalf("Table II mismatch at %v", row.Distro)
			}
		}
	}
}

// BenchmarkFigure2Temporal regenerates the Figure 2 series and the
// family-correlation observation (E3).
func BenchmarkFigure2Temporal(b *testing.B) {
	s := studyForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w2k := s.TemporalSeries(osmap.Windows2000)
		w2k3 := s.TemporalSeries(osmap.Windows2003)
		xs, ys, _ := stats.SeriesAlign(w2k, w2k3)
		r, err := stats.Pearson(xs, ys)
		if err != nil || r < 0.2 {
			b.Fatalf("Windows family correlation = %.2f, %v (paper: strongly correlated)", r, err)
		}
	}
}

// BenchmarkTable3PairwiseOverlap regenerates all 165 cells of Table III (E4).
func BenchmarkTable3PairwiseOverlap(b *testing.B) {
	s := studyForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range osmap.AllPairs() {
			want := paperdata.PairTable[p]
			if s.Overlap(p, core.FatServer) != want.All ||
				s.Overlap(p, core.ThinServer) != want.NoApp ||
				s.Overlap(p, core.IsolatedThinServer) != want.Remote {
				b.Fatalf("Table III mismatch at %v", p)
			}
		}
	}
}

// BenchmarkTable4PartBreakdown regenerates Table IV (E5).
func BenchmarkTable4PartBreakdown(b *testing.B) {
	s := studyForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range osmap.AllPairs() {
			got := s.PartBreakdown(p)
			want := paperdata.PartTable[p]
			if got.Kernel != want.Kernel || got.SysSoft != want.SysSoft || got.Driver != want.Driver {
				b.Fatalf("Table IV mismatch at %v", p)
			}
		}
	}
}

// BenchmarkTable5HistoryObserved regenerates Table V (E6).
func BenchmarkTable5HistoryObserved(b *testing.B) {
	s := studyForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for p, want := range paperdata.PeriodTable {
			got := s.PeriodSplit(p, paperdata.HistoryEndYear)
			if got.History != want.History || got.Observed != want.Observed {
				b.Fatalf("Table V mismatch at %v", p)
			}
		}
	}
}

// BenchmarkFigure3Configurations regenerates Figure 3 (E7).
func BenchmarkFigure3Configurations(b *testing.B) {
	s := studyForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, set := range paperdata.Figure3Sets {
			hist, obs := s.EvaluateConfiguration(set.Members, paperdata.HistoryEndYear)
			want := paperdata.Figure3Expected[set.Name]
			if hist != want.History || obs != want.Observed {
				b.Fatalf("Figure 3 mismatch at %s: %d/%d", set.Name, hist, obs)
			}
		}
	}
}

// BenchmarkTable6Releases regenerates Table VI (E8).
func BenchmarkTable6Releases(b *testing.B) {
	s := studyForBench(b)
	releases := map[string]struct {
		d osmap.Distro
		v string
	}{
		"Debian2.1": {osmap.Debian, "2.1"}, "Debian3.0": {osmap.Debian, "3.0"},
		"Debian4.0": {osmap.Debian, "4.0"}, "RedHat6.2*": {osmap.RedHat, "6.2*"},
		"RedHat4.0": {osmap.RedHat, "4.0"}, "RedHat5.0": {osmap.RedHat, "5.0"},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for cell, want := range paperdata.ReleaseTable {
			ra, rb := releases[cell.A], releases[cell.B]
			if got := s.ReleaseOverlap(ra.d, ra.v, rb.d, rb.v); got != want {
				b.Fatalf("Table VI mismatch at %s-%s", cell.A, cell.B)
			}
		}
	}
}

// BenchmarkKWiseOverlap regenerates the §IV-B k-wise counts (E9).
func BenchmarkKWiseOverlap(b *testing.B) {
	s := studyForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kwise := s.KWiseProducts(core.FatServer)
		for k, want := range paperdata.KWiseProducts {
			if kwise[k] != want {
				b.Fatalf("k-wise mismatch at %d: %d != %d", k, kwise[k], want)
			}
		}
	}
}

// BenchmarkSelection regenerates the §IV-C replica-set ranking (E10).
func BenchmarkSelection(b *testing.B) {
	s := studyForBench(b)
	window := core.SelectionWindow{ToYear: paperdata.HistoryEndYear}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ranked := s.RankReplicaSets(osmap.HistoryEligible(), 4, core.OnePerFamily, window)
		if len(ranked) != 12 || ranked[0].Cost != 10 {
			b.Fatalf("selection mismatch: best cost %d", ranked[0].Cost)
		}
	}
}

// BenchmarkFilterReduction regenerates the §IV-E(1) statistic (E11).
func BenchmarkFilterReduction(b *testing.B) {
	s := studyForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := s.FilterReduction(core.FatServer, core.IsolatedThinServer)
		if r < 48 || r > 64 {
			b.Fatalf("filter reduction = %.0f%%, paper says 56%%", r)
		}
	}
}

// BenchmarkAttackSimulation runs the E12 extension: Monte Carlo
// time-to-compromise of Set1 vs a homogeneous baseline.
func BenchmarkAttackSimulation(b *testing.B) {
	s := studyForBench(b)
	model := attack.NewModel(s, core.IsolatedThinServer)
	homog := attack.Scenario{Name: "homog", F: 1,
		OSes: []osmap.Distro{osmap.Debian, osmap.Debian, osmap.Debian, osmap.Debian}}
	diverse := attack.Scenario{Name: "set1", F: 1,
		OSes: []osmap.Distro{osmap.Windows2003, osmap.Solaris, osmap.Debian, osmap.OpenBSD}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gain, err := model.Gain(homog, diverse, 100)
		if err != nil || gain <= 1.2 {
			b.Fatalf("diversity gain = %.2f, %v", gain, err)
		}
	}
}

// --- parallel engine benchmarks -----------------------------------------
//
// The *Serial benchmarks measure the seed's single-goroutine algorithms
// with the memo cache cleared every iteration; the *Parallel variants
// measure the sharded engine at benchWorkers workers, also uncached, and
// assert the same paper numbers; the *Cached variants measure the
// memoized steady state (repeated CLI/benchmark invocations).

// BenchmarkTable1DistributionSerial regenerates Table I from scratch on
// the serial path every iteration.
func BenchmarkTable1DistributionSerial(b *testing.B) {
	s := studyForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ClearCache()
		_, distinct := s.ValidityTable()
		if distinct.Valid != paperdata.DistinctValid {
			b.Fatalf("Table I mismatch: %d distinct", distinct.Valid)
		}
	}
}

// BenchmarkTable1DistributionParallel regenerates Table I from scratch
// on the sharded engine every iteration.
func BenchmarkTable1DistributionParallel(b *testing.B) {
	s := studyForBenchParallel(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ClearCache()
		_, distinct := s.ValidityTable()
		if distinct.Valid != paperdata.DistinctValid {
			b.Fatalf("Table I mismatch: %d distinct", distinct.Valid)
		}
	}
}

// BenchmarkTable1DistributionCached measures the memoized steady state.
func BenchmarkTable1DistributionCached(b *testing.B) {
	s := studyForBenchParallel(b)
	s.ValidityTable()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, distinct := s.ValidityTable()
		if distinct.Valid != paperdata.DistinctValid {
			b.Fatalf("Table I mismatch: %d distinct", distinct.Valid)
		}
	}
}

// BenchmarkTable3PairwiseSerial regenerates all 55 pair overlaps of one
// profile column from scratch, serially.
func BenchmarkTable3PairwiseSerial(b *testing.B) {
	s := studyForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ClearCache()
		m := s.PairMatrix(core.FatServer)
		for p, n := range m {
			if n != paperdata.PairTable[p].All {
				b.Fatalf("Table III mismatch at %v", p)
			}
		}
	}
}

// BenchmarkTable3PairwiseParallel regenerates the same column on the
// sharded engine.
func BenchmarkTable3PairwiseParallel(b *testing.B) {
	s := studyForBenchParallel(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ClearCache()
		m := s.PairMatrix(core.FatServer)
		for p, n := range m {
			if n != paperdata.PairTable[p].All {
				b.Fatalf("Table III mismatch at %v", p)
			}
		}
	}
}

// BenchmarkKWiseSerial regenerates the k-wise product counts serially.
func BenchmarkKWiseSerial(b *testing.B) {
	s := studyForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ClearCache()
		kwise := s.KWiseProducts(core.FatServer)
		if kwise[6] != paperdata.KWiseProducts[6] {
			b.Fatalf("k-wise mismatch: %d", kwise[6])
		}
	}
}

// BenchmarkKWiseParallel regenerates the k-wise product counts on the
// sharded engine.
func BenchmarkKWiseParallel(b *testing.B) {
	s := studyForBenchParallel(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ClearCache()
		kwise := s.KWiseProducts(core.FatServer)
		if kwise[6] != paperdata.KWiseProducts[6] {
			b.Fatalf("k-wise mismatch: %d", kwise[6])
		}
	}
}

// BenchmarkSelectionUncached re-ranks the replica sets from scratch
// every iteration (the window pair matrix is recomputed, not memoized).
func BenchmarkSelectionUncached(b *testing.B) {
	s := studyForBenchParallel(b)
	window := core.SelectionWindow{ToYear: paperdata.HistoryEndYear}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ClearCache()
		ranked := s.RankReplicaSets(osmap.HistoryEligible(), 4, core.OnePerFamily, window)
		if len(ranked) != 12 || ranked[0].Cost != 10 {
			b.Fatalf("selection mismatch: best cost %d", ranked[0].Cost)
		}
	}
}

// BenchmarkTable1DistributionBitset regenerates Table I from scratch on
// the columnar bitset engine every iteration.
func BenchmarkTable1DistributionBitset(b *testing.B) {
	s := studyForBenchBitset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ClearCache()
		_, distinct := s.ValidityTable()
		if distinct.Valid != paperdata.DistinctValid {
			b.Fatalf("Table I mismatch: %d distinct", distinct.Valid)
		}
	}
}

// BenchmarkTable3PairwiseBitset regenerates the Fat-Server pair column
// on the bitset engine.
func BenchmarkTable3PairwiseBitset(b *testing.B) {
	s := studyForBenchBitset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ClearCache()
		m := s.PairMatrix(core.FatServer)
		for p, n := range m {
			if n != paperdata.PairTable[p].All {
				b.Fatalf("Table III mismatch at %v", p)
			}
		}
	}
}

// BenchmarkKWiseBitset regenerates the k-wise product counts on the
// bitset engine.
func BenchmarkKWiseBitset(b *testing.B) {
	s := studyForBenchBitset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ClearCache()
		kwise := s.KWiseProducts(core.FatServer)
		if kwise[6] != paperdata.KWiseProducts[6] {
			b.Fatalf("k-wise mismatch: %d", kwise[6])
		}
	}
}

// --- 100k-entry synthetic "modern NVD" benchmarks ------------------------
//
// The acceptance workload of the bitset engine: a seeded 100k-entry,
// 32-distro corpus at production volume. The *Scan variants run the
// PR-1 sharded record walks at benchWorkers workers; the *Bitset
// variants run the columnar engine at the same worker count. Both
// recompute from scratch every iteration (memo cache cleared).

const (
	synthBenchEntries = 100_000
	synthBenchDistros = 32
	synthBenchSeed    = 1
)

var (
	synthStudyScan   *core.Study
	synthStudyBitset *core.Study
)

func synthStudies(b *testing.B) (scan, bitset *core.Study) {
	b.Helper()
	if synthStudyScan == nil {
		sc, err := corpus.GenerateSynthetic(corpus.SyntheticConfig{
			Entries: synthBenchEntries, Distros: synthBenchDistros,
			Seed: synthBenchSeed, Workers: benchWorkers,
		})
		if err != nil {
			b.Fatalf("GenerateSynthetic: %v", err)
		}
		synthStudyScan = core.NewStudy(sc.Entries, core.WithRegistry(sc.Registry),
			core.WithEngine(core.EngineScan), core.WithParallelism(benchWorkers))
		synthStudyBitset = core.NewStudy(sc.Entries, core.WithRegistry(sc.Registry),
			core.WithParallelism(benchWorkers))
		if synthStudyScan.ValidEntries() != synthStudyBitset.ValidEntries() {
			b.Fatal("synthetic studies disagree on valid entries")
		}
	}
	return synthStudyScan, synthStudyBitset
}

// benchmarkPairs100k regenerates every cell of the modern Table III —
// the per-distro totals and the pairwise overlaps, all three profiles —
// from scratch each iteration.
func benchmarkPairs100k(b *testing.B, s *core.Study) {
	b.Helper()
	ds := s.Distros()
	profiles := core.Profiles()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ClearCache()
		total := 0
		for _, profile := range profiles {
			for _, d := range ds {
				total += s.Total(d, profile)
			}
			for _, n := range s.PairMatrix(profile) {
				total += n
			}
		}
		if total == 0 {
			b.Fatal("empty Table III")
		}
	}
}

// BenchmarkTable3PairwiseOverlap100kScan regenerates all three profile
// pair matrices over the 100k corpus on the sharded scan engine.
func BenchmarkTable3PairwiseOverlap100kScan(b *testing.B) {
	scan, _ := synthStudies(b)
	benchmarkPairs100k(b, scan)
}

// BenchmarkTable3PairwiseOverlap100kBitset is the same workload on the
// columnar bitset engine.
func BenchmarkTable3PairwiseOverlap100kBitset(b *testing.B) {
	_, bitset := synthStudies(b)
	benchmarkPairs100k(b, bitset)
}

func benchmarkKWise100k(b *testing.B, s *core.Study) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ClearCache()
		products := s.KWiseProducts(core.FatServer)
		clusters := s.KWiseClusters(core.IsolatedThinServer)
		if products[2] == 0 || clusters[2] == 0 {
			b.Fatal("empty k-wise counts")
		}
	}
}

// BenchmarkKWise100kScan regenerates the k-wise product and cluster
// counts over the 100k corpus on the sharded scan engine.
func BenchmarkKWise100kScan(b *testing.B) {
	scan, _ := synthStudies(b)
	benchmarkKWise100k(b, scan)
}

// BenchmarkKWise100kBitset is the same workload on the bitset engine.
func BenchmarkKWise100kBitset(b *testing.B) {
	_, bitset := synthStudies(b)
	benchmarkKWise100k(b, bitset)
}

func benchmarkTotals100k(b *testing.B, s *core.Study) {
	b.Helper()
	ds := s.Distros()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ClearCache()
		total := 0
		for _, profile := range core.Profiles() {
			for _, d := range ds {
				total += s.Total(d, profile)
			}
		}
		if total == 0 {
			b.Fatal("empty totals")
		}
	}
}

// BenchmarkTotals100kScan regenerates every per-distro total (3 profiles
// x 32 distros) on the sharded scan engine.
func BenchmarkTotals100kScan(b *testing.B) {
	scan, _ := synthStudies(b)
	benchmarkTotals100k(b, scan)
}

// BenchmarkTotals100kBitset is the same workload on the bitset engine.
func BenchmarkTotals100kBitset(b *testing.B) {
	_, bitset := synthStudies(b)
	benchmarkTotals100k(b, bitset)
}

// BenchmarkSyntheticGeneration measures the seeded 100k-corpus
// generator itself (rendering on the worker pool).
func BenchmarkSyntheticGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sc, err := corpus.GenerateSynthetic(corpus.SyntheticConfig{
			Entries: synthBenchEntries, Distros: synthBenchDistros,
			Seed: synthBenchSeed, Workers: benchWorkers,
		})
		if err != nil || len(sc.Entries) != synthBenchEntries {
			b.Fatalf("generate: %v, %d entries", err, len(sc.Entries))
		}
	}
}

// BenchmarkSyntheticStudyConstruction measures ingesting the 100k
// corpus into a Study (digest + year sort) at benchWorkers workers.
func BenchmarkSyntheticStudyConstruction(b *testing.B) {
	sc, err := corpus.GenerateSynthetic(corpus.SyntheticConfig{
		Entries: synthBenchEntries, Distros: synthBenchDistros,
		Seed: synthBenchSeed, Workers: benchWorkers,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := core.NewStudy(sc.Entries, core.WithRegistry(sc.Registry),
			core.WithParallelism(benchWorkers))
		if s.ValidEntries() == 0 {
			b.Fatal("no valid entries")
		}
	}
}

// BenchmarkStudyConstructionParallel digests the full corpus with the
// ingestion worker pool.
func BenchmarkStudyConstructionParallel(b *testing.B) {
	c, err := corpus.Generate()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := core.NewStudy(c.Entries, core.WithParallelism(benchWorkers))
		if s.ValidEntries() != paperdata.DistinctValid {
			b.Fatal("study mismatch")
		}
	}
}

// BenchmarkCorpusGenerationParallel renders the corpus on the worker
// pool.
func BenchmarkCorpusGenerationParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := corpus.Generate(corpus.WithParallelism(benchWorkers))
		if err != nil || len(c.Entries) != paperdata.TotalCollected {
			b.Fatalf("generate: %v, %d entries", err, len(c.Entries))
		}
	}
}

// BenchmarkFeedReadParallel measures the multi-file decode pipeline over
// the per-year feed set (the LoadFeeds hot path).
func BenchmarkFeedReadParallel(b *testing.B) {
	benchmarkFeedRead(b, nvdfeed.Workers(benchWorkers))
}

// BenchmarkFeedReadSerial is the single-goroutine baseline of the same
// workload.
func BenchmarkFeedReadSerial(b *testing.B) {
	benchmarkFeedRead(b)
}

func benchmarkFeedRead(b *testing.B, opts ...nvdfeed.ReaderOption) {
	b.Helper()
	c, err := corpus.Generate()
	if err != nil {
		b.Fatal(err)
	}
	paths := writeBenchFeeds(b, c.Entries)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		entries, err := nvdfeed.ReadFiles(paths, opts...)
		if err != nil || len(entries) != len(c.Entries) {
			b.Fatalf("read: %v, %d entries", err, len(entries))
		}
	}
}

// writeBenchFeeds renders entries as per-year feed files, paths in year
// order.
func writeBenchFeeds(b *testing.B, entries []*cve.Entry) []string {
	b.Helper()
	dir := b.TempDir()
	var paths []string
	for _, g := range corpus.SplitByYear(entries) {
		path := filepath.Join(dir, fmt.Sprintf("nvdcve-2.0-%d.xml.gz", g.Year))
		if err := nvdfeed.WriteFile(path, fmt.Sprintf("CVE-%d", g.Year), g.Entries); err != nil {
			b.Fatal(err)
		}
		paths = append(paths, path)
	}
	return paths
}

// BenchmarkFeedStreamParallel measures the bounded streaming pipeline
// over the same per-year feed set (the StreamFeeds hot path) — the
// drain-and-discard shape a constant-memory consumer sees.
func BenchmarkFeedStreamParallel(b *testing.B) {
	c, err := corpus.Generate()
	if err != nil {
		b.Fatal(err)
	}
	paths := writeBenchFeeds(b, c.Entries)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := nvdfeed.StreamFiles(paths, nvdfeed.Workers(benchWorkers))
		n := 0
		for range st.Entries() {
			n++
		}
		if err := st.Err(); err != nil || n != len(c.Entries) {
			b.Fatalf("stream: %v, %d entries", err, n)
		}
	}
}

// BenchmarkVulnDBLoadParallel measures the parallel-digest, batched
// insert ingestion of the full corpus.
func BenchmarkVulnDBLoadParallel(b *testing.B) {
	c, err := corpus.Generate()
	if err != nil {
		b.Fatal(err)
	}
	classifier := classify.NewClassifier()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db, err := vulndb.Create()
		if err != nil {
			b.Fatal(err)
		}
		stored, _, err := db.LoadEntriesParallel(c.Entries, classifier, benchWorkers)
		if err != nil || stored == 0 {
			b.Fatalf("load: %v, %d stored", err, stored)
		}
	}
}

// BenchmarkCorpusGeneration measures the calibrated generator itself.
func BenchmarkCorpusGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := corpus.Generate()
		if err != nil || len(c.Entries) != paperdata.TotalCollected {
			b.Fatalf("generate: %v, %d entries", err, len(c.Entries))
		}
	}
}

// BenchmarkFeedRoundTrip measures the XML write+parse path over the full
// corpus (the ingestion pipeline's hot loop).
func BenchmarkFeedRoundTrip(b *testing.B) {
	c, err := corpus.Generate()
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	path := filepath.Join(dir, "feed.xml.gz")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := nvdfeed.WriteFile(path, "CVE-ALL", c.Entries); err != nil {
			b.Fatal(err)
		}
		entries, err := nvdfeed.ReadFile(path)
		if err != nil || len(entries) != len(c.Entries) {
			b.Fatalf("round trip: %v, %d entries", err, len(entries))
		}
	}
}

// BenchmarkStudyConstruction measures digesting the full corpus into a
// Study (clustering, classification, CVSS checks for 2120 entries).
func BenchmarkStudyConstruction(b *testing.B) {
	c, err := corpus.Generate()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := core.NewStudy(c.Entries)
		if s.ValidEntries() != paperdata.DistinctValid {
			b.Fatal("study mismatch")
		}
	}
}

// warmStartFixture writes the 100k synthetic corpus as per-year feeds
// plus its columnar snapshot, once per process (the feed and snapshot
// warm-start benchmarks measure boots over the identical corpus).
var warmStartFix struct {
	paths []string
	snap  string
	err   error
}

func warmStartFixture(b *testing.B) (paths []string, snapPath string) {
	b.Helper()
	if warmStartFix.paths == nil && warmStartFix.err == nil {
		dir, err := os.MkdirTemp("", "osdiv-warmstart-*")
		if err != nil {
			warmStartFix.err = err
		} else {
			spec := SyntheticSpec{
				Entries: synthBenchEntries, Distros: synthBenchDistros, Seed: synthBenchSeed,
			}
			warmStartFix.snap = filepath.Join(dir, "warm.osds")
			warmStartFix.paths, warmStartFix.err = GenerateSyntheticFeeds(dir, spec, WithParallelism(benchWorkers))
			if warmStartFix.err == nil {
				_, warmStartFix.err = StreamFeeds(warmStartFix.paths,
					WithParallelism(benchWorkers),
					WithSyntheticUniverse(synthBenchDistros),
					WithSnapshot(warmStartFix.snap))
			}
		}
	}
	if warmStartFix.err != nil {
		b.Fatalf("warm-start fixture: %v", warmStartFix.err)
	}
	return warmStartFix.paths, warmStartFix.snap
}

// BenchmarkWarmStart100kFeed is the cold boot: stream-ingest and digest
// the 100k-entry feed set into a query-ready analysis.
func BenchmarkWarmStart100kFeed(b *testing.B) {
	paths, _ := warmStartFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := StreamFeeds(paths, WithParallelism(benchWorkers),
			WithSyntheticUniverse(synthBenchDistros))
		if err != nil || a.ValidCount() == 0 {
			b.Fatalf("StreamFeeds: %v", err)
		}
	}
}

// BenchmarkWarmStart100kSnapshot boots the same corpus from its
// snapshot file: checksum, validate, adopt the columns zero-copy.
func BenchmarkWarmStart100kSnapshot(b *testing.B) {
	benchmarkSnapshotWarmStart(b)
}

// BenchmarkSnapshotWarmStart is the perf gate's name for the snapshot
// boot (BENCH_core.json pins it against BenchmarkWarmStart100kFeed).
func BenchmarkSnapshotWarmStart(b *testing.B) {
	benchmarkSnapshotWarmStart(b)
}

func benchmarkSnapshotWarmStart(b *testing.B) {
	_, snapPath := warmStartFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := LoadSnapshot(snapPath, WithParallelism(benchWorkers))
		if err != nil || a.ValidCount() == 0 {
			b.Fatalf("LoadSnapshot: %v", err)
		}
		a.Close()
	}
}
