package osdiversity

// The benchmark harness: one benchmark per experiment of the paper's
// evaluation (E1-E11 per DESIGN.md's index, plus the E12 extension).
// Each benchmark regenerates its table or figure from the calibrated
// corpus through the real analysis pipeline and asserts the paper's
// numbers, so `go test -bench=.` doubles as the reproduction script.

import (
	"path/filepath"
	"testing"

	"osdiversity/internal/attack"
	"osdiversity/internal/core"
	"osdiversity/internal/corpus"
	"osdiversity/internal/nvdfeed"
	"osdiversity/internal/osmap"
	"osdiversity/internal/paperdata"
	"osdiversity/internal/stats"
)

var benchStudy *core.Study

func studyForBench(b *testing.B) *core.Study {
	b.Helper()
	if benchStudy == nil {
		c, err := corpus.Generate()
		if err != nil {
			b.Fatalf("corpus.Generate: %v", err)
		}
		benchStudy = core.NewStudy(c.Entries)
	}
	return benchStudy
}

// BenchmarkTable1Distribution regenerates Table I (E1).
func BenchmarkTable1Distribution(b *testing.B) {
	s := studyForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, distinct := s.ValidityTable()
		if distinct.Valid != paperdata.DistinctValid || len(rows) != osmap.NumDistros {
			b.Fatalf("Table I mismatch: %d distinct", distinct.Valid)
		}
	}
}

// BenchmarkTable2Classification regenerates Table II (E2).
func BenchmarkTable2Classification(b *testing.B) {
	s := studyForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, _ := s.ClassTable()
		for _, row := range rows {
			want := paperdata.ClassTable[row.Distro]
			if row.Kernel != want.Kernel || row.App != want.App {
				b.Fatalf("Table II mismatch at %v", row.Distro)
			}
		}
	}
}

// BenchmarkFigure2Temporal regenerates the Figure 2 series and the
// family-correlation observation (E3).
func BenchmarkFigure2Temporal(b *testing.B) {
	s := studyForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w2k := s.TemporalSeries(osmap.Windows2000)
		w2k3 := s.TemporalSeries(osmap.Windows2003)
		xs, ys, _ := stats.SeriesAlign(w2k, w2k3)
		r, err := stats.Pearson(xs, ys)
		if err != nil || r < 0.2 {
			b.Fatalf("Windows family correlation = %.2f, %v (paper: strongly correlated)", r, err)
		}
	}
}

// BenchmarkTable3PairwiseOverlap regenerates all 165 cells of Table III (E4).
func BenchmarkTable3PairwiseOverlap(b *testing.B) {
	s := studyForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range osmap.AllPairs() {
			want := paperdata.PairTable[p]
			if s.Overlap(p, core.FatServer) != want.All ||
				s.Overlap(p, core.ThinServer) != want.NoApp ||
				s.Overlap(p, core.IsolatedThinServer) != want.Remote {
				b.Fatalf("Table III mismatch at %v", p)
			}
		}
	}
}

// BenchmarkTable4PartBreakdown regenerates Table IV (E5).
func BenchmarkTable4PartBreakdown(b *testing.B) {
	s := studyForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range osmap.AllPairs() {
			got := s.PartBreakdown(p)
			want := paperdata.PartTable[p]
			if got.Kernel != want.Kernel || got.SysSoft != want.SysSoft || got.Driver != want.Driver {
				b.Fatalf("Table IV mismatch at %v", p)
			}
		}
	}
}

// BenchmarkTable5HistoryObserved regenerates Table V (E6).
func BenchmarkTable5HistoryObserved(b *testing.B) {
	s := studyForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for p, want := range paperdata.PeriodTable {
			got := s.PeriodSplit(p, paperdata.HistoryEndYear)
			if got.History != want.History || got.Observed != want.Observed {
				b.Fatalf("Table V mismatch at %v", p)
			}
		}
	}
}

// BenchmarkFigure3Configurations regenerates Figure 3 (E7).
func BenchmarkFigure3Configurations(b *testing.B) {
	s := studyForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, set := range paperdata.Figure3Sets {
			hist, obs := s.EvaluateConfiguration(set.Members, paperdata.HistoryEndYear)
			want := paperdata.Figure3Expected[set.Name]
			if hist != want.History || obs != want.Observed {
				b.Fatalf("Figure 3 mismatch at %s: %d/%d", set.Name, hist, obs)
			}
		}
	}
}

// BenchmarkTable6Releases regenerates Table VI (E8).
func BenchmarkTable6Releases(b *testing.B) {
	s := studyForBench(b)
	releases := map[string]struct {
		d osmap.Distro
		v string
	}{
		"Debian2.1": {osmap.Debian, "2.1"}, "Debian3.0": {osmap.Debian, "3.0"},
		"Debian4.0": {osmap.Debian, "4.0"}, "RedHat6.2*": {osmap.RedHat, "6.2*"},
		"RedHat4.0": {osmap.RedHat, "4.0"}, "RedHat5.0": {osmap.RedHat, "5.0"},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for cell, want := range paperdata.ReleaseTable {
			ra, rb := releases[cell.A], releases[cell.B]
			if got := s.ReleaseOverlap(ra.d, ra.v, rb.d, rb.v); got != want {
				b.Fatalf("Table VI mismatch at %s-%s", cell.A, cell.B)
			}
		}
	}
}

// BenchmarkKWiseOverlap regenerates the §IV-B k-wise counts (E9).
func BenchmarkKWiseOverlap(b *testing.B) {
	s := studyForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kwise := s.KWiseProducts(core.FatServer)
		for k, want := range paperdata.KWiseProducts {
			if kwise[k] != want {
				b.Fatalf("k-wise mismatch at %d: %d != %d", k, kwise[k], want)
			}
		}
	}
}

// BenchmarkSelection regenerates the §IV-C replica-set ranking (E10).
func BenchmarkSelection(b *testing.B) {
	s := studyForBench(b)
	window := core.SelectionWindow{ToYear: paperdata.HistoryEndYear}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ranked := s.RankReplicaSets(osmap.HistoryEligible(), 4, core.OnePerFamily, window)
		if len(ranked) != 12 || ranked[0].Cost != 10 {
			b.Fatalf("selection mismatch: best cost %d", ranked[0].Cost)
		}
	}
}

// BenchmarkFilterReduction regenerates the §IV-E(1) statistic (E11).
func BenchmarkFilterReduction(b *testing.B) {
	s := studyForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := s.FilterReduction(core.FatServer, core.IsolatedThinServer)
		if r < 48 || r > 64 {
			b.Fatalf("filter reduction = %.0f%%, paper says 56%%", r)
		}
	}
}

// BenchmarkAttackSimulation runs the E12 extension: Monte Carlo
// time-to-compromise of Set1 vs a homogeneous baseline.
func BenchmarkAttackSimulation(b *testing.B) {
	s := studyForBench(b)
	model := attack.NewModel(s, core.IsolatedThinServer)
	homog := attack.Scenario{Name: "homog", F: 1,
		OSes: []osmap.Distro{osmap.Debian, osmap.Debian, osmap.Debian, osmap.Debian}}
	diverse := attack.Scenario{Name: "set1", F: 1,
		OSes: []osmap.Distro{osmap.Windows2003, osmap.Solaris, osmap.Debian, osmap.OpenBSD}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gain, err := model.Gain(homog, diverse, 100)
		if err != nil || gain <= 1.2 {
			b.Fatalf("diversity gain = %.2f, %v", gain, err)
		}
	}
}

// BenchmarkCorpusGeneration measures the calibrated generator itself.
func BenchmarkCorpusGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := corpus.Generate()
		if err != nil || len(c.Entries) != paperdata.TotalCollected {
			b.Fatalf("generate: %v, %d entries", err, len(c.Entries))
		}
	}
}

// BenchmarkFeedRoundTrip measures the XML write+parse path over the full
// corpus (the ingestion pipeline's hot loop).
func BenchmarkFeedRoundTrip(b *testing.B) {
	c, err := corpus.Generate()
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	path := filepath.Join(dir, "feed.xml.gz")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := nvdfeed.WriteFile(path, "CVE-ALL", c.Entries); err != nil {
			b.Fatal(err)
		}
		entries, err := nvdfeed.ReadFile(path)
		if err != nil || len(entries) != len(c.Entries) {
			b.Fatalf("round trip: %v, %d entries", err, len(entries))
		}
	}
}

// BenchmarkStudyConstruction measures digesting the full corpus into a
// Study (clustering, classification, CVSS checks for 2120 entries).
func BenchmarkStudyConstruction(b *testing.B) {
	c, err := corpus.Generate()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := core.NewStudy(c.Entries)
		if s.ValidEntries() != paperdata.DistinctValid {
			b.Fatal("study mismatch")
		}
	}
}
