package osdiversity

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestApplyDeltaMatchesColdBuild asserts that booting from a prefix of
// the calibrated per-year feeds and applying the remainder as a delta
// answers every facade query byte-identically to a cold build over the
// full feed set — at workers 1 and 4, and from a snapshot-booted base.
func TestApplyDeltaMatchesColdBuild(t *testing.T) {
	dir := t.TempDir()
	feeds, err := GenerateFeeds(filepath.Join(dir, "feeds"), WithParallelism(4))
	if err != nil {
		t.Fatalf("GenerateFeeds: %v", err)
	}
	if len(feeds) < 3 {
		t.Fatalf("calibrated corpus spans only %d feed files", len(feeds))
	}
	basePaths, deltaPaths := feeds[:len(feeds)-2], feeds[len(feeds)-2:]

	for _, workers := range []int{1, 4} {
		cold, err := StreamFeeds(feeds, WithParallelism(workers))
		if err != nil {
			t.Fatalf("StreamFeeds(all, workers=%d): %v", workers, err)
		}
		want := fullFingerprint(t, cold)

		base, err := StreamFeeds(basePaths, WithParallelism(workers))
		if err != nil {
			t.Fatalf("StreamFeeds(base, workers=%d): %v", workers, err)
		}
		baseBefore := fullFingerprint(t, base)
		merged, err := base.ApplyDelta(deltaPaths)
		if err != nil {
			t.Fatalf("ApplyDelta(workers=%d): %v", workers, err)
		}
		if got := merged.Parallelism(); got != workers {
			t.Errorf("merged epoch runs %d workers, want %d (inherited)", got, workers)
		}
		if got := fullFingerprint(t, merged); !bytes.Equal(want, got) {
			t.Errorf("workers %d: delta-applied analysis differs from cold build", workers)
		}
		// The base must be untouched by the apply.
		if baseAfter := fullFingerprint(t, base); !bytes.Equal(baseBefore, baseAfter) {
			t.Error("base analysis mutated by ApplyDelta")
		}
	}

	// The production reload shape: snapshot-booted base + delta feeds.
	snapPath := filepath.Join(dir, "base.osds")
	if _, err := StreamFeeds(basePaths, WithSnapshot(snapPath)); err != nil {
		t.Fatalf("StreamFeeds(tee): %v", err)
	}
	booted, err := LoadSnapshot(snapPath)
	if err != nil {
		t.Fatalf("LoadSnapshot: %v", err)
	}
	defer booted.Close()
	teePath := filepath.Join(dir, "merged.osds")
	merged, err := booted.ApplyDelta(deltaPaths, WithSnapshot(teePath))
	if err != nil {
		t.Fatalf("ApplyDelta(snapshot base): %v", err)
	}
	cold, err := StreamFeeds(feeds)
	if err != nil {
		t.Fatalf("StreamFeeds(all): %v", err)
	}
	if got, want := fullFingerprint(t, merged), fullFingerprint(t, cold); !bytes.Equal(want, got) {
		t.Error("delta on snapshot-booted base differs from cold build")
	}
	if err := merged.SelfCheck(); err != nil {
		t.Errorf("SelfCheck(merged): %v", err)
	}
	// The merged epoch must not depend on the base's file mapping.
	if err := booted.Close(); err != nil {
		t.Fatalf("Close(base): %v", err)
	}
	if got, want := fullFingerprint(t, merged), fullFingerprint(t, cold); !bytes.Equal(want, got) {
		t.Error("merged epoch broke when the base snapshot mapping closed")
	}
	// And the teed snapshot of the merged epoch warm-starts identically.
	reloaded, err := LoadSnapshot(teePath)
	if err != nil {
		t.Fatalf("LoadSnapshot(tee): %v", err)
	}
	defer reloaded.Close()
	if got, want := fullFingerprint(t, reloaded), fullFingerprint(t, cold); !bytes.Equal(want, got) {
		t.Error("teed snapshot of the merged epoch differs from cold build")
	}
}

// TestApplyDeltaFailuresLeaveBaseUsable asserts the degradation
// contract of the reload path: a corrupt delta feed or a failed
// snapshot tee returns an error and the base analysis keeps answering
// exactly as before.
func TestApplyDeltaFailuresLeaveBaseUsable(t *testing.T) {
	dir := t.TempDir()
	feeds, err := GenerateFeeds(filepath.Join(dir, "feeds"))
	if err != nil {
		t.Fatalf("GenerateFeeds: %v", err)
	}
	base, err := StreamFeeds(feeds[:len(feeds)-1])
	if err != nil {
		t.Fatalf("StreamFeeds: %v", err)
	}
	before := fullFingerprint(t, base)

	corrupt := filepath.Join(dir, "nvdcve-2.0-corrupt.xml.gz")
	if err := os.WriteFile(corrupt, []byte("this is not gzip"), 0o644); err != nil {
		t.Fatalf("write corrupt delta: %v", err)
	}
	if _, err := base.ApplyDelta([]string{corrupt}); err == nil {
		t.Error("ApplyDelta(corrupt) succeeded, want error")
	}

	if _, err := base.ApplyDelta(feeds[len(feeds)-1:],
		WithSnapshot(filepath.Join(dir, "no-such-dir", "tee.osds"))); err == nil {
		t.Error("ApplyDelta with failing snapshot tee succeeded, want error")
	}

	if after := fullFingerprint(t, base); !bytes.Equal(before, after) {
		t.Error("failed ApplyDelta mutated the base analysis")
	}
}
