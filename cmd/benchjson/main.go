// Command benchjson converts `go test -bench` output into a compact
// JSON summary so the repository's performance trajectory is tracked
// across PRs (the CI benchmark step writes BENCH_core.json with it).
//
// Usage:
//
//	go test -run xxx -bench . -benchtime=1x . | benchjson -out BENCH_core.json
//
// For every benchmark name ending in "Scan" with a "Bitset" sibling
// (e.g. BenchmarkKWise100kScan / BenchmarkKWise100kBitset) the summary
// also records the scan-over-bitset speedup factor.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op`)

// summary is the BENCH_core.json document.
type summary struct {
	// Note says how to regenerate the file.
	Note string `json:"note"`
	// NsPerOp maps benchmark name (CPU suffix stripped) to ns/op. When
	// a benchmark appears several times (-count > 1), the median wins.
	NsPerOp map[string]float64 `json:"ns_per_op"`
	// Speedups maps "<Name>" to scan/bitset ns ratios for benchmark
	// pairs named <Name>Scan / <Name>Bitset.
	Speedups map[string]float64 `json:"speedup_scan_over_bitset"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := flag.String("out", "BENCH_core.json", "output JSON path (- for stdout)")
	flag.Parse()

	samples := make(map[string][]float64)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		// Pass through on stderr so the CI log keeps the raw table and
		// `-out -` still emits clean JSON on stdout.
		fmt.Fprintln(os.Stderr, line)
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		samples[m[1]] = append(samples[m[1]], ns)
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if len(samples) == 0 {
		log.Fatal("no benchmark lines found on stdin")
	}

	doc := summary{
		Note:     "ns/op per benchmark; regenerate with: go test -run xxx -bench . -benchtime=1x . | go run ./cmd/benchjson",
		NsPerOp:  make(map[string]float64, len(samples)),
		Speedups: make(map[string]float64),
	}
	for name, ns := range samples {
		sort.Float64s(ns)
		doc.NsPerOp[name] = ns[len(ns)/2]
	}
	for name, ns := range doc.NsPerOp {
		base, ok := strings.CutSuffix(name, "Scan")
		if !ok {
			continue
		}
		bitset, ok := doc.NsPerOp[base+"Bitset"]
		if !ok || bitset == 0 {
			continue
		}
		doc.Speedups[base] = round2(ns / bitset)
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d benchmarks, %d speedups)\n", *out, len(doc.NsPerOp), len(doc.Speedups))
}

func round2(x float64) float64 { return float64(int(x*100+0.5)) / 100 }
