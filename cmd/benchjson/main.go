// Command benchjson converts `go test -bench` output into a compact
// JSON summary so the repository's performance trajectory is tracked
// across PRs (the CI benchmark steps write BENCH_core.json and
// BENCH_relstore.json with it).
//
// Usage:
//
//	go test -run xxx -bench . -benchtime=1x . | benchjson -out BENCH_core.json
//
// For every benchmark name ending in "Scan" with a "Bitset" sibling
// (e.g. BenchmarkKWise100kScan / BenchmarkKWise100kBitset) the summary
// records the scan-over-bitset speedup factor; likewise "Naive" /
// "Planned" siblings (the relstore query-planner benchmarks) record
// naive-over-planned, and "Feed" / "Snapshot" siblings (the warm-start
// benchmarks) record feed-over-snapshot.
//
// With -compare old.json the command additionally gates on performance
// regressions: any benchmark present in both the old summary and the
// fresh input whose ns/op grew beyond -tolerance (relative, default
// 0.35) fails the run with exit status 2 (tool errors — unreadable
// baseline, empty input — keep exit 1). Benchmarks below -floor ns/op
// in the old summary are skipped (single-iteration timings of
// micro-benchmarks are noise-dominated), and benchmarks appearing in
// only one of the two summaries are ignored, so adding or retiring a
// benchmark never trips the gate. The old summary is read before -out
// is written, so both flags may name the same file — CI compares the
// fresh run against the committed BENCH_*.json and then overwrites it
// for the artifact upload.
//
// With -trend series.jsonl the command also tracks the long-run
// trajectory: the fresh medians are gated against the per-benchmark
// best (minimum ns/op) across every prior run recorded in the series,
// with -trend-tolerance headroom, and are then appended to the series
// as one JSON line. A missing or empty series bootstraps silently —
// the first run only records. Trend breaches exit 2 like -compare
// regressions; the fresh line is appended either way, so the history
// stays complete.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op`)

// summary is the benchmark summary document.
type summary struct {
	// Note says how to regenerate the file.
	Note string `json:"note"`
	// NsPerOp maps benchmark name (CPU suffix stripped) to ns/op. When
	// a benchmark appears several times (-count > 1), the median wins.
	NsPerOp map[string]float64 `json:"ns_per_op"`
	// Speedups maps "<Name>" to scan/bitset ns ratios for benchmark
	// pairs named <Name>Scan / <Name>Bitset.
	Speedups map[string]float64 `json:"speedup_scan_over_bitset,omitempty"`
	// PlanSpeedups maps "<Name>" to naive/planned ns ratios for
	// benchmark pairs named <Name>Naive / <Name>Planned (the relstore
	// query planner against its pre-planner baseline).
	PlanSpeedups map[string]float64 `json:"speedup_naive_over_planned,omitempty"`
	// WarmSpeedups maps "<Name>" to feed/snapshot ns ratios for
	// benchmark pairs named <Name>Feed / <Name>Snapshot (cold feed
	// digestion against the columnar snapshot warm start).
	WarmSpeedups map[string]float64 `json:"speedup_feed_over_snapshot,omitempty"`
}

// speedupPairs names the benchmark suffix conventions the summary
// derives ratios from.
var speedupPairs = []struct {
	slow, fast string
	dst        func(*summary) map[string]float64
}{
	{"Scan", "Bitset", func(s *summary) map[string]float64 { return s.Speedups }},
	{"Naive", "Planned", func(s *summary) map[string]float64 { return s.PlanSpeedups }},
	{"Feed", "Snapshot", func(s *summary) map[string]float64 { return s.WarmSpeedups }},
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := flag.String("out", "BENCH_core.json", "output JSON path (- for stdout)")
	compare := flag.String("compare", "", "gate against this prior summary JSON (read before -out is written)")
	tolerance := flag.Float64("tolerance", 0.35, "relative ns/op growth beyond which a shared benchmark regresses")
	floor := flag.Float64("floor", 100_000, "skip the gate for benchmarks under this many ns/op in the old summary (noise)")
	trend := flag.String("trend", "", "gate against the per-benchmark best of this JSONL run series, then append this run")
	trendTolerance := flag.Float64("trend-tolerance", 0.75, "relative growth over the series best beyond which the trend gate fails")
	flag.Parse()

	// Read the baseline before anything is written so -compare and
	// -out may name the same committed file.
	var baseline *summary
	if *compare != "" {
		old, err := readSummary(*compare)
		if err != nil {
			log.Fatal(err)
		}
		baseline = old
	}

	samples, err := parseBench(os.Stdin, os.Stderr)
	if err != nil {
		log.Fatal(err)
	}
	if len(samples) == 0 {
		log.Fatal("no benchmark lines found on stdin")
	}

	doc := buildSummary(samples)

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
	} else {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d benchmarks, %d speedups)\n", *out, len(doc.NsPerOp), len(doc.Speedups))
	}

	breached := false
	if baseline != nil {
		report := compareSummaries(baseline.NsPerOp, doc.NsPerOp, *tolerance, *floor)
		fmt.Fprintf(os.Stderr, "gate: %d compared, %d under floor, %d only in one summary\n",
			report.compared, report.underFloor, report.unmatched)
		if report.compared == 0 && len(baseline.NsPerOp) > 0 {
			// Zero shared above-floor benchmarks means the gate checked
			// nothing — a wrong -compare target or a mass rename must
			// not pass vacuously.
			log.Fatalf("gate compared no benchmarks against %s: wrong baseline?", *compare)
		}
		if len(report.regressions) > 0 {
			for _, r := range report.regressions {
				fmt.Fprintf(os.Stderr, "REGRESSION %s: %.0f -> %.0f ns/op (%+.0f%%, tolerance %.0f%%)\n",
					r.name, r.oldNs, r.newNs, 100*(r.newNs/r.oldNs-1), 100**tolerance)
			}
			fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed beyond tolerance against %s\n",
				len(report.regressions), *compare)
			breached = true
		} else {
			fmt.Fprintln(os.Stderr, "gate: ok")
		}
	}

	if *trend != "" {
		history, err := readTrend(*trend)
		if err != nil {
			log.Fatal(err)
		}
		best := trendBest(history)
		report := compareSummaries(best, doc.NsPerOp, *trendTolerance, *floor)
		if len(history) == 0 {
			fmt.Fprintf(os.Stderr, "trend: empty series %s, recording the first run\n", *trend)
		} else {
			fmt.Fprintf(os.Stderr, "trend: %d run(s) in series, %d benchmark(s) gated against the best\n",
				len(history), report.compared)
		}
		for _, r := range report.regressions {
			fmt.Fprintf(os.Stderr, "TREND %s: best %.0f -> %.0f ns/op (%+.0f%%, tolerance %.0f%%)\n",
				r.name, r.oldNs, r.newNs, 100*(r.newNs/r.oldNs-1), 100**trendTolerance)
		}
		// The fresh run joins the series whether it breached or not:
		// the history must record what actually happened.
		if err := appendTrend(*trend, doc.NsPerOp); err != nil {
			log.Fatal(err)
		}
		if len(report.regressions) > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) drifted beyond the series best in %s\n",
				len(report.regressions), *trend)
			breached = true
		} else {
			fmt.Fprintln(os.Stderr, "trend: ok")
		}
	}

	if breached {
		// Exit 2 distinguishes a confirmed regression from tool errors
		// (log.Fatal's exit 1): CI treats 2 as a gate verdict and
		// anything else as a broken bench run.
		os.Exit(2)
	}
}

// trendEntry is one JSONL line of a -trend series: the medians of one
// benchmark run.
type trendEntry struct {
	NsPerOp map[string]float64 `json:"ns_per_op"`
}

// readTrend loads a JSONL run series. A missing file is an empty
// series (the first run bootstraps it); a malformed line is an error —
// a corrupted history must not silently weaken the gate.
func readTrend(path string) ([]trendEntry, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var history []trendEntry
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var e trendEntry
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			return nil, fmt.Errorf("parse %s line %d: %w", path, len(history)+1, err)
		}
		history = append(history, e)
	}
	return history, sc.Err()
}

// trendBest reduces a run series to the per-benchmark minimum ns/op —
// the best the benchmark has ever done, the reference the trend gate
// measures drift against.
func trendBest(history []trendEntry) map[string]float64 {
	best := make(map[string]float64)
	for _, e := range history {
		for name, ns := range e.NsPerOp {
			if cur, ok := best[name]; !ok || ns < cur {
				best[name] = ns
			}
		}
	}
	return best
}

// appendTrend records one run at the end of the series file.
func appendTrend(path string, nsPerOp map[string]float64) error {
	line, err := json.Marshal(trendEntry{NsPerOp: nsPerOp})
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(line, '\n')); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// parseBench scans `go test -bench` output, echoing every line to echo
// (the CI log keeps the raw table) and collecting ns/op samples per
// benchmark name with the CPU suffix stripped.
func parseBench(r io.Reader, echo io.Writer) (map[string][]float64, error) {
	samples := make(map[string][]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(echo, line)
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		samples[m[1]] = append(samples[m[1]], ns)
	}
	return samples, sc.Err()
}

// buildSummary reduces samples (median per benchmark) and derives the
// speedup-pair ratios.
func buildSummary(samples map[string][]float64) *summary {
	doc := &summary{
		Note:         "ns/op per benchmark; regenerate with: go test -run xxx -bench . -benchtime=1x <packages> | go run ./cmd/benchjson -out <file> (see the CI workflow for each file's package list)",
		NsPerOp:      make(map[string]float64, len(samples)),
		Speedups:     make(map[string]float64),
		PlanSpeedups: make(map[string]float64),
		WarmSpeedups: make(map[string]float64),
	}
	for name, ns := range samples {
		sort.Float64s(ns)
		doc.NsPerOp[name] = ns[len(ns)/2]
	}
	for name, ns := range doc.NsPerOp {
		for _, pair := range speedupPairs {
			base, ok := strings.CutSuffix(name, pair.slow)
			if !ok {
				continue
			}
			fast, ok := doc.NsPerOp[base+pair.fast]
			if !ok || fast == 0 {
				continue
			}
			pair.dst(doc)[base] = round2(ns / fast)
		}
	}
	if len(doc.Speedups) == 0 {
		doc.Speedups = nil
	}
	if len(doc.PlanSpeedups) == 0 {
		doc.PlanSpeedups = nil
	}
	if len(doc.WarmSpeedups) == 0 {
		doc.WarmSpeedups = nil
	}
	return doc
}

// readSummary loads a prior summary document.
func readSummary(path string) (*summary, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc summary
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	return &doc, nil
}

// regression is one benchmark that slowed beyond tolerance.
type regression struct {
	name         string
	oldNs, newNs float64
}

// gateReport is the outcome of one baseline comparison.
type gateReport struct {
	compared    int // names in both summaries, at or above the floor
	underFloor  int // shared names skipped as noise-dominated
	unmatched   int // names in only one summary (new or retired benchmarks)
	regressions []regression
}

// compareSummaries gates fresh ns/op numbers against a baseline. Only
// benchmarks present in both maps participate; shared benchmarks whose
// baseline is under floor ns/op are skipped (their single-iteration
// timings are noise); the rest regress when they grew beyond the
// relative tolerance.
func compareSummaries(oldNs, newNs map[string]float64, tolerance, floor float64) gateReport {
	var rep gateReport
	for name, o := range oldNs {
		n, ok := newNs[name]
		if !ok {
			rep.unmatched++
			continue
		}
		if o < floor {
			rep.underFloor++
			continue
		}
		rep.compared++
		if n > o*(1+tolerance) {
			rep.regressions = append(rep.regressions, regression{name: name, oldNs: o, newNs: n})
		}
	}
	for name := range newNs {
		if _, ok := oldNs[name]; !ok {
			rep.unmatched++
		}
	}
	sort.Slice(rep.regressions, func(i, j int) bool {
		return rep.regressions[i].name < rep.regressions[j].name
	})
	return rep
}

func round2(x float64) float64 { return float64(int(x*100+0.5)) / 100 }
