// Command benchjson converts `go test -bench` output into a compact
// JSON summary so the repository's performance trajectory is tracked
// across PRs (the CI benchmark steps write BENCH_core.json and
// BENCH_relstore.json with it).
//
// Usage:
//
//	go test -run xxx -bench . -benchtime=1x . | benchjson -out BENCH_core.json
//
// For every benchmark name ending in "Scan" with a "Bitset" sibling
// (e.g. BenchmarkKWise100kScan / BenchmarkKWise100kBitset) the summary
// records the scan-over-bitset speedup factor; likewise "Naive" /
// "Planned" siblings (the relstore query-planner benchmarks) record
// naive-over-planned.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op`)

// summary is the benchmark summary document.
type summary struct {
	// Note says how to regenerate the file.
	Note string `json:"note"`
	// NsPerOp maps benchmark name (CPU suffix stripped) to ns/op. When
	// a benchmark appears several times (-count > 1), the median wins.
	NsPerOp map[string]float64 `json:"ns_per_op"`
	// Speedups maps "<Name>" to scan/bitset ns ratios for benchmark
	// pairs named <Name>Scan / <Name>Bitset.
	Speedups map[string]float64 `json:"speedup_scan_over_bitset,omitempty"`
	// PlanSpeedups maps "<Name>" to naive/planned ns ratios for
	// benchmark pairs named <Name>Naive / <Name>Planned (the relstore
	// query planner against its pre-planner baseline).
	PlanSpeedups map[string]float64 `json:"speedup_naive_over_planned,omitempty"`
}

// speedupPairs names the benchmark suffix conventions the summary
// derives ratios from.
var speedupPairs = []struct {
	slow, fast string
	dst        func(*summary) map[string]float64
}{
	{"Scan", "Bitset", func(s *summary) map[string]float64 { return s.Speedups }},
	{"Naive", "Planned", func(s *summary) map[string]float64 { return s.PlanSpeedups }},
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := flag.String("out", "BENCH_core.json", "output JSON path (- for stdout)")
	flag.Parse()

	samples := make(map[string][]float64)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		// Pass through on stderr so the CI log keeps the raw table and
		// `-out -` still emits clean JSON on stdout.
		fmt.Fprintln(os.Stderr, line)
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		samples[m[1]] = append(samples[m[1]], ns)
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if len(samples) == 0 {
		log.Fatal("no benchmark lines found on stdin")
	}

	doc := summary{
		Note:         "ns/op per benchmark; regenerate with: go test -run xxx -bench . -benchtime=1x <packages> | go run ./cmd/benchjson -out <file> (see the CI workflow for each file's package list)",
		NsPerOp:      make(map[string]float64, len(samples)),
		Speedups:     make(map[string]float64),
		PlanSpeedups: make(map[string]float64),
	}
	for name, ns := range samples {
		sort.Float64s(ns)
		doc.NsPerOp[name] = ns[len(ns)/2]
	}
	for name, ns := range doc.NsPerOp {
		for _, pair := range speedupPairs {
			base, ok := strings.CutSuffix(name, pair.slow)
			if !ok {
				continue
			}
			fast, ok := doc.NsPerOp[base+pair.fast]
			if !ok || fast == 0 {
				continue
			}
			pair.dst(&doc)[base] = round2(ns / fast)
		}
	}
	if len(doc.Speedups) == 0 {
		doc.Speedups = nil
	}
	if len(doc.PlanSpeedups) == 0 {
		doc.PlanSpeedups = nil
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d benchmarks, %d speedups)\n", *out, len(doc.NsPerOp), len(doc.Speedups))
}

func round2(x float64) float64 { return float64(int(x*100+0.5)) / 100 }
