package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const benchOutput = `goos: linux
goarch: amd64
BenchmarkTable3PairwiseOverlap-2    	       1	    500000 ns/op
BenchmarkKWise100kScan-2            	       1	   3000000 ns/op
BenchmarkKWise100kBitset-2          	       1	    300000 ns/op
BenchmarkJoinNaive-2                	       1	  80000000 ns/op
BenchmarkJoinPlanned-2              	       1	   2000000 ns/op
PASS
`

func TestParseBenchStripsCPUSuffix(t *testing.T) {
	samples, err := parseBench(strings.NewReader(benchOutput), io.Discard)
	if err != nil {
		t.Fatalf("parseBench: %v", err)
	}
	if got := len(samples); got != 5 {
		t.Fatalf("parsed %d benchmarks, want 5 (%v)", got, samples)
	}
	if ns := samples["BenchmarkKWise100kScan"]; len(ns) != 1 || ns[0] != 3000000 {
		t.Errorf("BenchmarkKWise100kScan samples = %v, want [3000000]", ns)
	}
}

func TestBuildSummaryMedianAndSpeedups(t *testing.T) {
	doc := buildSummary(map[string][]float64{
		"BenchmarkKWise100kScan":         {3000000, 1000000, 2000000},
		"BenchmarkKWise100kBitset":       {400000},
		"BenchmarkJoinNaive":             {80000000},
		"BenchmarkJoinPlanned":           {2000000},
		"BenchmarkWarmStart100kFeed":     {5000000000},
		"BenchmarkWarmStart100kSnapshot": {10000000},
	})
	if got := doc.NsPerOp["BenchmarkKWise100kScan"]; got != 2000000 {
		t.Errorf("median = %v, want 2000000", got)
	}
	if got := doc.Speedups["BenchmarkKWise100k"]; got != 5 {
		t.Errorf("scan/bitset speedup = %v, want 5", got)
	}
	if got := doc.PlanSpeedups["BenchmarkJoin"]; got != 40 {
		t.Errorf("naive/planned speedup = %v, want 40", got)
	}
	if got := doc.WarmSpeedups["BenchmarkWarmStart100k"]; got != 500 {
		t.Errorf("feed/snapshot speedup = %v, want 500", got)
	}
}

func TestCompareSummariesGate(t *testing.T) {
	old := map[string]float64{
		"BenchmarkStable":    1_000_000, // within tolerance
		"BenchmarkRegressed": 1_000_000, // +50% > 35% tolerance
		"BenchmarkImproved":  1_000_000, // faster is never flagged
		"BenchmarkNoisy":     50_000,    // under the 100k floor: skipped
		"BenchmarkRetired":   1_000_000, // gone from the new run: ignored
	}
	fresh := map[string]float64{
		"BenchmarkStable":    1_300_000,
		"BenchmarkRegressed": 1_500_000,
		"BenchmarkImproved":  200_000,
		"BenchmarkNoisy":     500_000,
		"BenchmarkBrandNew":  9_000_000, // only in the new run: ignored
	}
	rep := compareSummaries(old, fresh, 0.35, 100_000)
	if rep.compared != 3 {
		t.Errorf("compared = %d, want 3", rep.compared)
	}
	if rep.underFloor != 1 {
		t.Errorf("underFloor = %d, want 1", rep.underFloor)
	}
	if rep.unmatched != 2 {
		t.Errorf("unmatched = %d, want 2 (one retired, one new)", rep.unmatched)
	}
	if len(rep.regressions) != 1 || rep.regressions[0].name != "BenchmarkRegressed" {
		t.Fatalf("regressions = %+v, want exactly BenchmarkRegressed", rep.regressions)
	}
	if r := rep.regressions[0]; r.oldNs != 1_000_000 || r.newNs != 1_500_000 {
		t.Errorf("regression ns = %v -> %v, want 1000000 -> 1500000", r.oldNs, r.newNs)
	}
}

func TestCompareSummariesExactTolerancePasses(t *testing.T) {
	old := map[string]float64{"BenchmarkEdge": 1_000_000}
	fresh := map[string]float64{"BenchmarkEdge": 1_350_000}
	if rep := compareSummaries(old, fresh, 0.35, 0); len(rep.regressions) != 0 {
		t.Fatalf("exactly-at-tolerance flagged as regression: %+v", rep.regressions)
	}
}

func TestTrendSeriesRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "series.jsonl")

	// A missing series bootstraps silently.
	history, err := readTrend(path)
	if err != nil || history != nil {
		t.Fatalf("readTrend(missing) = %v, %v; want empty, nil", history, err)
	}

	runs := []map[string]float64{
		{"BenchmarkA": 2_000_000, "BenchmarkB": 900_000},
		{"BenchmarkA": 1_000_000, "BenchmarkB": 1_100_000},
		{"BenchmarkA": 1_500_000},
	}
	for _, run := range runs {
		if err := appendTrend(path, run); err != nil {
			t.Fatalf("appendTrend: %v", err)
		}
	}
	history, err = readTrend(path)
	if err != nil {
		t.Fatalf("readTrend: %v", err)
	}
	if len(history) != 3 {
		t.Fatalf("series length = %d, want 3", len(history))
	}
	best := trendBest(history)
	if best["BenchmarkA"] != 1_000_000 || best["BenchmarkB"] != 900_000 {
		t.Errorf("trendBest = %v, want per-benchmark minima", best)
	}
}

func TestTrendGateAgainstBest(t *testing.T) {
	history := []trendEntry{
		{NsPerOp: map[string]float64{"BenchmarkA": 1_000_000, "BenchmarkB": 1_000_000}},
		{NsPerOp: map[string]float64{"BenchmarkA": 3_000_000}},
	}
	fresh := map[string]float64{
		"BenchmarkA": 2_000_000, // +100% over the best run: breached
		"BenchmarkB": 1_500_000, // +50%: inside the 75% headroom
		"BenchmarkC": 9_000_000, // never recorded: ignored
	}
	rep := compareSummaries(trendBest(history), fresh, 0.75, 100_000)
	if len(rep.regressions) != 1 || rep.regressions[0].name != "BenchmarkA" {
		t.Fatalf("trend regressions = %+v, want exactly BenchmarkA", rep.regressions)
	}
}

func TestReadTrendRejectsCorruptLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "series.jsonl")
	if err := os.WriteFile(path, []byte("{\"ns_per_op\":{\"BenchmarkA\":1}}\nnot json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readTrend(path); err == nil {
		t.Fatal("readTrend accepted a corrupt series line")
	}
}
