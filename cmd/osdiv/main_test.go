package main

import (
	"bufio"
	"bytes"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	"osdiversity"
	"osdiversity/internal/httpapi"
	"osdiversity/internal/server"
)

// The smoke tests re-execute the test binary with GO_OSDIV_MAIN=1 so
// each subcommand runs through the real main(), flag parsing, loaders
// and printers, end to end against the generated calibrated corpus.

func TestMain(m *testing.M) {
	if os.Getenv("GO_OSDIV_MAIN") == "1" {
		os.Args = []string{"osdiv"}
		if raw := os.Getenv("GO_OSDIV_ARGS"); raw != "" {
			os.Args = append(os.Args, strings.Split(raw, "\x1f")...)
		}
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// runOsdiv re-executes the test binary as the osdiv command.
func runOsdiv(t *testing.T, args ...string) (stdout, stderr string, exitCode int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=TestMain")
	cmd.Env = append(os.Environ(),
		"GO_OSDIV_MAIN=1",
		"GO_OSDIV_ARGS="+strings.Join(args, "\x1f"))
	var outBuf, errBuf bytes.Buffer
	cmd.Stdout = &outBuf
	cmd.Stderr = &errBuf
	err := cmd.Run()
	code := 0
	if exitErr, ok := err.(*exec.ExitError); ok {
		code = exitErr.ExitCode()
	} else if err != nil {
		t.Fatalf("run osdiv %v: %v", args, err)
	}
	return outBuf.String(), errBuf.String(), code
}

func TestSubcommandsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates the corpus per subcommand")
	}
	tests := []struct {
		name string
		args []string
		// wantOut are substrings that must appear on stdout.
		wantOut []string
	}{
		{
			name: "tables",
			args: []string{"-workers", "4", "tables"},
			wantOut: []string{
				"Table I — distribution of OS vulnerabilities in NVD",
				"Table II — vulnerabilities per OS component class",
				"Table III — shared vulnerabilities per OS pair",
				"Table IV — common vulnerabilities on Isolated Thin Servers by part",
				"Table V — history (1994-2005) vs observed (2006-2010)",
				"# distinct",
				"1887",
			},
		},
		{
			name:    "tables one",
			args:    []string{"tables", "-t", "1"},
			wantOut: []string{"Table I", "1887"},
		},
		{
			name: "figures",
			args: []string{"-workers", "4", "figures"},
			wantOut: []string{
				"Figure 2 — Windows family",
				"Figure 2 — Linux family",
				"Figure 3 — configurations, history period (1994-2005)",
			},
		},
		{
			name:    "kwise",
			args:    []string{"-workers", "4", "kwise"},
			wantOut: []string{"k-wise overlap", "most shared: CVE-2008-4609"},
		},
		{
			name:    "select",
			args:    []string{"-workers", "4", "select", "-one-per-family", "-top", "3"},
			wantOut: []string{"replica sets of size 4", "Windows2003", "Solaris"},
		},
		{
			name:    "releases",
			args:    []string{"-workers", "4", "releases"},
			wantOut: []string{"Table VI — common vulnerabilities between OS releases", "Debian4.0-RedHat5.0"},
		},
		{
			name:    "simulate",
			args:    []string{"-workers", "4", "simulate", "-trials", "20"},
			wantOut: []string{"attack simulation", "diversity gain (Set1 vs homogeneous Debian)"},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			stdout, stderr, code := runOsdiv(t, tt.args...)
			if code != 0 {
				t.Fatalf("exit code %d, stderr: %s", code, stderr)
			}
			for _, want := range tt.wantOut {
				if !strings.Contains(stdout, want) {
					t.Errorf("stdout missing %q\nstdout: %.2000s", want, stdout)
				}
			}
		})
	}
}

func TestSQLTable3Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("generates feeds and imports a database")
	}
	dir := t.TempDir()
	feeds, err := osdiversity.GenerateFeeds(filepath.Join(dir, "feeds"), osdiversity.WithParallelism(4))
	if err != nil {
		t.Fatalf("GenerateFeeds: %v", err)
	}
	dbPath := filepath.Join(dir, "study.db")
	if _, _, err := osdiversity.ImportFeeds(dbPath, feeds, osdiversity.WithParallelism(4)); err != nil {
		t.Fatalf("ImportFeeds: %v", err)
	}
	stdout, stderr, code := runOsdiv(t, "-db", dbPath, "-workers", "4", "sqltable3")
	if code != 0 {
		t.Fatalf("sqltable3 exit code %d, stderr: %s", code, stderr)
	}
	for _, want := range []string{"Table III via SQL", "OpenBSD-NetBSD"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("stdout missing %q\nstdout: %.2000s", want, stdout)
		}
	}

	_, stderr, code = runOsdiv(t, "sqltable3")
	if code == 0 {
		t.Fatal("sqltable3 without -db succeeded, want failure")
	}
	if !strings.Contains(stderr, "needs -db") {
		t.Errorf("stderr missing -db diagnostic: %s", stderr)
	}
}

// TestStreamFeedsSmoke asserts `-feeds -stream` prints exactly what the
// materialized feed load prints, and that -stream without -feeds fails
// with a usable diagnostic.
func TestStreamFeedsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("generates feeds and loads them twice")
	}
	dir := t.TempDir()
	feedDir := filepath.Join(dir, "feeds")
	if _, err := osdiversity.GenerateFeeds(feedDir, osdiversity.WithParallelism(4)); err != nil {
		t.Fatalf("GenerateFeeds: %v", err)
	}
	streamed, stderr, code := runOsdiv(t, "-feeds", feedDir, "-stream", "-workers", "4", "tables", "-t", "1")
	if code != 0 {
		t.Fatalf("streamed tables exit code %d, stderr: %s", code, stderr)
	}
	loaded, stderr, code := runOsdiv(t, "-feeds", feedDir, "-workers", "4", "tables", "-t", "1")
	if code != 0 {
		t.Fatalf("materialized tables exit code %d, stderr: %s", code, stderr)
	}
	if streamed != loaded {
		t.Errorf("-stream output differs from materialized output\n got: %.300s\nwant: %.300s", streamed, loaded)
	}
	if !strings.Contains(streamed, "1887") {
		t.Errorf("streamed Table I missing the paper's 1887 distinct count:\n%.1000s", streamed)
	}

	_, stderr, code = runOsdiv(t, "-stream", "tables")
	if code == 0 {
		t.Fatal("-stream without -feeds succeeded, want failure")
	}
	if !strings.Contains(stderr, "-stream needs -feeds") {
		t.Errorf("stderr missing -stream diagnostic: %s", stderr)
	}
}

func TestParseServeFlags(t *testing.T) {
	t.Run("defaults", func(t *testing.T) {
		opts, err := parseServeFlags(nil)
		if err != nil {
			t.Fatalf("parseServeFlags: %v", err)
		}
		if opts.addr != "127.0.0.1:8080" || opts.maxInFlight != 0 || opts.drainTimeout != 10*time.Second {
			t.Errorf("defaults = %+v", opts)
		}
		if opts.watch != "" || opts.watchInterval != 10*time.Second ||
			opts.tee != "" || opts.maxQueueWait != 5*time.Second {
			t.Errorf("reload defaults = %+v", opts)
		}
	})
	t.Run("custom", func(t *testing.T) {
		opts, err := parseServeFlags([]string{"-addr", ":9090", "-max-inflight", "7", "-drain", "3s"})
		if err != nil {
			t.Fatalf("parseServeFlags: %v", err)
		}
		if opts.addr != ":9090" || opts.maxInFlight != 7 || opts.drainTimeout != 3*time.Second {
			t.Errorf("custom = %+v", opts)
		}
	})
	t.Run("reload flags", func(t *testing.T) {
		opts, err := parseServeFlags([]string{
			"-watch", "deltas", "-watch-interval", "250ms",
			"-tee", "warm.osds", "-max-queue-wait", "2s",
		})
		if err != nil {
			t.Fatalf("parseServeFlags: %v", err)
		}
		if opts.watch != "deltas" || opts.watchInterval != 250*time.Millisecond ||
			opts.tee != "warm.osds" || opts.maxQueueWait != 2*time.Second {
			t.Errorf("reload flags = %+v", opts)
		}
	})
	for _, tt := range []struct {
		name string
		args []string
	}{
		{"unknown flag", []string{"-frobnicate"}},
		{"trailing argument", []string{"extra"}},
		{"negative max-inflight", []string{"-max-inflight", "-3"}},
		{"empty addr", []string{"-addr", ""}},
		{"negative watch interval", []string{"-watch", "d", "-watch-interval", "-1s"}},
		{"non-positive queue wait", []string{"-max-queue-wait", "0s"}},
		{"tee without watch", []string{"-tee", "warm.osds"}},
	} {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := parseServeFlags(tt.args); err == nil {
				t.Errorf("parseServeFlags(%v) succeeded, want error", tt.args)
			}
		})
	}
}

// TestTablesJSONIdentity asserts `osdiv tables -t N -json` prints the
// same bytes the server answers — the contract the CI smoke step diffs.
func TestTablesJSONIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates the corpus")
	}
	a, err := osdiversity.LoadCalibrated()
	if err != nil {
		t.Fatalf("LoadCalibrated: %v", err)
	}
	want3, err := httpapi.Marshal(server.BuildTable3(a))
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	stdout, stderr, code := runOsdiv(t, "tables", "-t", "3", "-json")
	if code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, stderr)
	}
	if stdout != string(want3) {
		t.Errorf("tables -t 3 -json differs from server document\n got: %.200s\nwant: %.200s", stdout, want3)
	}

	stdout, stderr, code = runOsdiv(t, "tables", "-json")
	if code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, stderr)
	}
	if got := strings.Count(stdout, "\n"); got != 7 {
		t.Errorf("tables -json printed %d lines, want 7 (corpus provenance, then one document per table)", got)
	}
	first := stdout[:strings.IndexByte(stdout, '\n')+1]
	for _, want := range []string{`"source":"calibrated"`, `"engine":"bitset"`, `"epoch_unix":`} {
		if !strings.Contains(first, want) {
			t.Errorf("corpus line missing %s: %.300s", want, first)
		}
	}
	if strings.Contains(first, "snapshot_digest") {
		t.Errorf("feed-built corpus line reports a snapshot digest: %.300s", first)
	}
}

// TestSnapshotBootSmoke round-trips the calibrated corpus through a
// snapshot file and asserts `osdiv -snapshot` prints the same tables,
// reports the snapshot provenance, and refuses conflicting sources.
func TestSnapshotBootSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates the corpus")
	}
	path := filepath.Join(t.TempDir(), "study.osds")
	if _, err := osdiversity.LoadCalibrated(osdiversity.WithSnapshot(path)); err != nil {
		t.Fatalf("LoadCalibrated(WithSnapshot): %v", err)
	}

	fromSnap, stderr, code := runOsdiv(t, "-snapshot", path, "tables", "-t", "3")
	if code != 0 {
		t.Fatalf("snapshot tables exit code %d, stderr: %s", code, stderr)
	}
	fromFeed, stderr, code := runOsdiv(t, "tables", "-t", "3")
	if code != 0 {
		t.Fatalf("calibrated tables exit code %d, stderr: %s", code, stderr)
	}
	if fromSnap != fromFeed {
		t.Errorf("-snapshot Table III differs from calibrated build\n got: %.300s\nwant: %.300s", fromSnap, fromFeed)
	}

	stdout, stderr, code := runOsdiv(t, "-snapshot", path, "tables", "-json")
	if code != 0 {
		t.Fatalf("snapshot tables -json exit code %d, stderr: %s", code, stderr)
	}
	first := stdout[:strings.IndexByte(stdout, '\n')+1]
	for _, want := range []string{`"source":"snapshot:`, `"snapshot_digest":"crc32c:`} {
		if !strings.Contains(first, want) {
			t.Errorf("snapshot corpus line missing %s: %.300s", want, first)
		}
	}

	_, stderr, code = runOsdiv(t, "-snapshot", path, "-feeds", "somewhere", "tables")
	if code == 0 {
		t.Fatal("-snapshot with -feeds succeeded, want failure")
	}
	if !strings.Contains(stderr, "cannot combine") {
		t.Errorf("stderr missing conflict diagnostic: %s", stderr)
	}

	_, stderr, code = runOsdiv(t, "-snapshot", filepath.Join(t.TempDir(), "absent.osds"), "tables")
	if code == 0 {
		t.Fatal("-snapshot with a missing file succeeded, want failure")
	}
}

var serveAddrRe = regexp.MustCompile(`on http://([0-9.:]+)`)

// TestServeSmoke boots the real `osdiv serve` through main(), queries
// it over TCP, and shuts it down with SIGTERM, asserting the graceful
// drain exits cleanly.
func TestServeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates the corpus and binds a socket")
	}
	cmd := exec.Command(os.Args[0], "-test.run=TestMain")
	cmd.Env = append(os.Environ(),
		"GO_OSDIV_MAIN=1",
		"GO_OSDIV_ARGS="+strings.Join([]string{"-workers", "2", "serve", "-addr", "127.0.0.1:0"}, "\x1f"))
	stderrPipe, err := cmd.StderrPipe()
	if err != nil {
		t.Fatalf("stderr pipe: %v", err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("start serve: %v", err)
	}
	defer cmd.Process.Kill()

	// The startup log line names the bound address.
	var addr string
	var logged bytes.Buffer
	sc := bufio.NewScanner(stderrPipe)
	for sc.Scan() {
		line := sc.Text()
		logged.WriteString(line + "\n")
		if m := serveAddrRe.FindStringSubmatch(line); m != nil {
			addr = m[1]
			break
		}
	}
	if addr == "" {
		t.Fatalf("no listen address in serve output:\n%s", logged.String())
	}
	go io.Copy(io.Discard, stderrPipe)

	base := "http://" + addr
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "{\"status\":\"ok\"}\n" {
		t.Errorf("healthz = %d %q", resp.StatusCode, body)
	}

	// The corpus loads asynchronously; queries gate on readiness.
	waitReady(t, base)

	resp, err = http.Get(base + "/api/table5?split=abc")
	if err != nil {
		t.Fatalf("GET bad table5: %v", err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), `"bad_param"`) {
		t.Errorf("bad split = %d %q, want 400 bad_param envelope", resp.StatusCode, body)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("serve exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("serve did not drain within 15s of SIGTERM")
	}
}

// waitReady polls /readyz until the boot corpus is resident.
func waitReady(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("server did not become ready within 60s")
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// startServe boots the real `osdiv serve` through main() and returns
// its base URL once the listener is up.
func startServe(t *testing.T, osdivArgs ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=TestMain")
	cmd.Env = append(os.Environ(),
		"GO_OSDIV_MAIN=1",
		"GO_OSDIV_ARGS="+strings.Join(osdivArgs, "\x1f"))
	stderrPipe, err := cmd.StderrPipe()
	if err != nil {
		t.Fatalf("stderr pipe: %v", err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("start serve: %v", err)
	}
	t.Cleanup(func() { cmd.Process.Kill() })

	var addr string
	var logged bytes.Buffer
	sc := bufio.NewScanner(stderrPipe)
	for sc.Scan() {
		line := sc.Text()
		logged.WriteString(line + "\n")
		if m := serveAddrRe.FindStringSubmatch(line); m != nil {
			addr = m[1]
			break
		}
	}
	if addr == "" {
		t.Fatalf("no listen address in serve output:\n%s", logged.String())
	}
	go io.Copy(io.Discard, stderrPipe)
	return cmd, "http://" + addr
}

// TestServeReloadSmoke drives the live-epoch machinery through the real
// process: boot over feeds with a held-out delta, prove /admin/reload
// reports no_delta on an empty watch dir, hot-swap epoch 2 via SIGHUP
// once the delta lands, then feed a corrupt delta and assert the server
// degrades — old epoch still answering byte-identical tables, failure
// counted on /corpus — before draining cleanly on SIGTERM.
func TestServeReloadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates the corpus and binds a socket")
	}
	dir := t.TempDir()
	feeds, err := osdiversity.GenerateFeeds(filepath.Join(dir, "feeds"))
	if err != nil {
		t.Fatalf("GenerateFeeds: %v", err)
	}
	if len(feeds) < 2 {
		t.Fatalf("calibrated corpus spans only %d feed files", len(feeds))
	}
	// Hold the newest feed year out of the boot corpus: it becomes the
	// delta a reload applies.
	watchDir := filepath.Join(dir, "delta")
	if err := os.MkdirAll(watchDir, 0o755); err != nil {
		t.Fatal(err)
	}
	heldOut := feeds[len(feeds)-1]
	parked := filepath.Join(dir, filepath.Base(heldOut))
	if err := os.Rename(heldOut, parked); err != nil {
		t.Fatalf("hold out delta feed: %v", err)
	}

	cmd, base := startServe(t,
		"-feeds", filepath.Join(dir, "feeds"), "-workers", "2",
		"serve", "-addr", "127.0.0.1:0", "-watch", watchDir, "-watch-interval", "0")
	waitReady(t, base)

	getJSON := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if status, body := getJSON("/corpus"); status != 200 || !strings.Contains(body, `"epoch":1`) {
		t.Fatalf("/corpus at boot = %d %s", status, body)
	}
	_, bootT3 := getJSON("/api/table3")

	// Empty watch dir: the admin trigger answers the typed 409.
	resp, err := http.Post(base+"/admin/reload", "application/json", nil)
	if err != nil {
		t.Fatalf("POST /admin/reload: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict || !strings.Contains(string(body), `"no_delta"`) {
		t.Fatalf("reload with empty watch dir = %d %q, want 409 no_delta", resp.StatusCode, body)
	}

	// Land the delta and reload via the operator path: SIGHUP.
	if err := os.Rename(parked, filepath.Join(watchDir, filepath.Base(parked))); err != nil {
		t.Fatalf("land delta feed: %v", err)
	}
	if err := cmd.Process.Signal(syscall.SIGHUP); err != nil {
		t.Fatalf("SIGHUP: %v", err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		if _, body := getJSON("/corpus"); strings.Contains(body, `"epoch":2`) {
			break
		}
		if time.Now().After(deadline) {
			_, body := getJSON("/corpus")
			t.Fatalf("no epoch 2 within 60s of SIGHUP; /corpus: %s", body)
		}
		time.Sleep(100 * time.Millisecond)
	}
	_, reloadedT3 := getJSON("/api/table3")
	if reloadedT3 == bootT3 {
		t.Error("table3 unchanged after applying the held-out delta year")
	}

	// Corrupt delta: the admin trigger fails, the epoch does not move,
	// and the query plane keeps answering the reloaded corpus.
	if err := os.WriteFile(filepath.Join(watchDir, "zz-corrupt.xml.gz"),
		[]byte("not gzip at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(base+"/admin/reload", "application/json", nil)
	if err != nil {
		t.Fatalf("POST /admin/reload (corrupt): %v", err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError || !strings.Contains(string(body), `"reload_failed"`) {
		t.Fatalf("corrupt reload = %d %q, want 500 reload_failed", resp.StatusCode, body)
	}
	status, corpus := getJSON("/corpus")
	if status != 200 || !strings.Contains(corpus, `"epoch":2`) ||
		!strings.Contains(corpus, `"reload_failures":1`) {
		t.Fatalf("/corpus after corrupt reload = %d %s", status, corpus)
	}
	if status, body := getJSON("/api/table3"); status != 200 || body != reloadedT3 {
		t.Fatalf("table3 degraded after failed reload: status %d stable=%v", status, body == reloadedT3)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("serve exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("serve did not drain within 15s of SIGTERM")
	}
}

// TestWatchFingerprint pins the poller's change detector: stable across
// no-ops, sensitive to added feed files, blind to non-feed noise.
func TestWatchFingerprint(t *testing.T) {
	dir := t.TempDir()
	fp0, err := watchFingerprint(dir)
	if err != nil || fp0 != "" {
		t.Fatalf("empty dir fingerprint = %q, %v", fp0, err)
	}
	if err := os.WriteFile(filepath.Join(dir, "a.xml.gz"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	fp1, err := watchFingerprint(dir)
	if err != nil || fp1 == "" {
		t.Fatalf("fingerprint after add = %q, %v", fp1, err)
	}
	fp2, _ := watchFingerprint(dir)
	if fp1 != fp2 {
		t.Error("fingerprint unstable across identical scans")
	}
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("y"), 0o644); err != nil {
		t.Fatal(err)
	}
	if fp3, _ := watchFingerprint(dir); fp3 != fp1 {
		t.Error("non-feed file changed the fingerprint")
	}
	if err := os.WriteFile(filepath.Join(dir, "b.xml"), []byte("z"), 0o644); err != nil {
		t.Fatal(err)
	}
	if fp4, _ := watchFingerprint(dir); fp4 == fp1 {
		t.Error("second feed file did not change the fingerprint")
	}
}

func TestBareInvocationUsage(t *testing.T) {
	_, stderr, code := runOsdiv(t)
	if code != 2 {
		t.Fatalf("bare invocation exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr, "usage: osdiv") {
		t.Errorf("stderr missing usage line: %s", stderr)
	}
}

func TestUnknownSubcommandUsage(t *testing.T) {
	_, stderr, code := runOsdiv(t, "frobnicate")
	if code != 2 {
		t.Fatalf("unknown subcommand exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr, "usage: osdiv") {
		t.Errorf("stderr missing usage line: %s", stderr)
	}
}

func TestUnknownTableFails(t *testing.T) {
	_, stderr, code := runOsdiv(t, "tables", "-t", "9")
	if code == 0 {
		t.Fatal("tables -t 9 succeeded, want failure")
	}
	if !strings.Contains(stderr, "unknown table") {
		t.Errorf("stderr missing diagnostic: %s", stderr)
	}
}
