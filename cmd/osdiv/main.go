// Command osdiv regenerates every table and figure of the paper's
// evaluation from a data source (calibrated corpus, XML feeds, or an
// imported database).
//
// Usage:
//
//	osdiv [-db study.db | -feeds dir [-stream] | -snapshot study.osds] <subcommand>
//
// Subcommands:
//
//	tables    print Tables I-VI (-t N for one table)
//	figures   print Figures 2 and 3 (-f N for one figure)
//	kwise     print the k-wise product overlap counts (§IV-B)
//	select    rank replica sets on history data (§IV-C)
//	releases  print the per-release overlap study (Table VI)
//	simulate  run the attack simulation extension (E12)
//	recommend search OS assignments and rotation schedules maximizing
//	          Monte Carlo survival (internal/scenario); prints the
//	          httpapi wire document, byte-identical to the server's
//	          POST /api/recommend for the same spec
//	sqltable3 print the Table III matrix computed by the SQL engine
//	          (requires -db; one grouped hash-join plan, no Study)
//	query     run one ad-hoc SELECT against the imported database
//	          (requires -db; positional args bind `?` placeholders;
//	          output is byte-identical to the server's POST /api/query)
//	serve     stay resident and answer every query over HTTP/JSON
//	          (-addr, -max-inflight, -max-queue-wait; drains gracefully
//	          on SIGTERM). The corpus loads in the background — /readyz
//	          answers 503 until it is resident. With `-watch dir` the
//	          server hot-reloads delta feeds from dir on SIGHUP, POST
//	          /admin/reload, or a directory poll (-watch-interval),
//	          swapping epochs atomically and degrading to the previous
//	          epoch when a reload fails; `-tee file` snapshots each
//	          reloaded epoch for the next warm start. With `-shard i/N`
//	          the server owns the i-th of N deterministic year-range
//	          corpus slices — the backend role behind `osdiv gateway`.
//	gateway   scatter-gather front-end over sharded backends
//	          (-backends url1,url2,...): fans every /api query out to
//	          all shards, merges the partial aggregates, and answers
//	          byte-identically to one server over the whole corpus
//	          (docs/ARCHITECTURE.md explains the merge rules).
//
// `tables -json` prints the httpapi wire documents instead of ASCII
// tables — the corpus provenance document first, then tables 1-6;
// `osdiv tables -t 3 -json` is byte-identical to the server's
// /api/table3 response (the CI smoke step diffs them).
//
// `-snapshot study.osds` warm-starts any subcommand, serve included,
// from a columnar snapshot written by nvdimport/nvdgen — no feed or
// database needed, and the reported tables are byte-identical.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"osdiversity"
	"osdiversity/internal/httpapi"
	"osdiversity/internal/relstore"
	"osdiversity/internal/report"
	"osdiversity/internal/server"
	"osdiversity/internal/vulndb"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("osdiv: ")

	db := flag.String("db", "", "analyze a database produced by nvdimport")
	feeds := flag.String("feeds", "", "analyze XML feeds from this directory")
	workers := flag.Int("workers", 1, "worker count for ingestion and analysis (0 = all CPUs)")
	engine := flag.String("engine", "bitset", "analysis engine: bitset (columnar index) or scan (record walk)")
	stream := flag.Bool("stream", false, "with -feeds, ingest through the bounded streaming pipeline (constant memory)")
	synthetic := flag.Int("synthetic", 0, "analyze a seeded synthetic modern-NVD corpus of this many entries")
	distros := flag.Int("distros", 32, "synthetic universe width (with -synthetic)")
	seed := flag.Uint64("seed", 1, "synthetic corpus seed (with -synthetic)")
	snapPath := flag.String("snapshot", "", "warm-start from a columnar snapshot file (read-only)")
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
	}

	// sqltable3 and query run against the database directly — no Study
	// needed.
	if flag.Arg(0) == "sqltable3" {
		if err := runSQLTable3(*db, *workers); err != nil {
			log.Fatal(err)
		}
		return
	}
	if flag.Arg(0) == "query" {
		if err := runQuery(*db, *workers, flag.Args()[1:]); err != nil {
			log.Fatal(err)
		}
		return
	}

	cfg := loadConfig{
		db: *db, feeds: *feeds, workers: *workers, engine: *engine, stream: *stream,
		synthetic: *synthetic, distros: *distros, seed: *seed, snapshot: *snapPath,
	}

	// serve loads its corpus asynchronously so the listener (and the
	// /healthz + /readyz probes) come up immediately; every other
	// subcommand needs the analysis resident before it can start.
	if flag.Arg(0) == "serve" {
		if err := runServe(cfg, flag.Args()[1:]); err != nil {
			log.Fatal(err)
		}
		return
	}
	// gateway owns no corpus at all — it scatters to shard backends.
	if flag.Arg(0) == "gateway" {
		if err := runGateway(flag.Args()[1:]); err != nil {
			log.Fatal(err)
		}
		return
	}

	a, err := loadAnalysis(cfg)
	if err != nil {
		log.Fatal(err)
	}

	args := flag.Args()[1:]
	switch flag.Arg(0) {
	case "tables":
		err = runTables(a, cfg, args)
	case "figures":
		err = runFigures(a, args)
	case "kwise":
		err = runKWise(a)
	case "select":
		err = runSelect(a, args)
	case "releases":
		err = runReleases(a)
	case "simulate":
		err = runSimulate(a, args)
	case "recommend":
		err = runRecommend(a, args)
	default:
		usage()
	}
	if err != nil {
		log.Fatal(err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: osdiv [-db file | -feeds dir [-stream] | -synthetic n | -snapshot file] [-workers n] [-engine bitset|scan] tables|figures|kwise|select|releases|simulate|recommend|sqltable3|query|serve|gateway [options]")
	os.Exit(2)
}

// runSQLTable3 prints the Table III v(AB) matrix computed entirely by
// the embedded SQL engine's grouped hash-join plan.
func runSQLTable3(dbPath string, workers int) error {
	if dbPath == "" {
		return fmt.Errorf("sqltable3 needs -db (a database produced by nvdimport)")
	}
	cells, err := osdiversity.SQLPairwiseShared(dbPath, osdiversity.WithParallelism(workers))
	if err != nil {
		return err
	}
	t := report.NewTable("Table III via SQL — shared vulnerabilities per OS pair (one grouped join plan)",
		"Pair", "v(AB)")
	for _, c := range cells {
		t.AddRowValues(c.A+"-"+c.B, c.Shared)
	}
	return t.WriteASCII(os.Stdout)
}

// runQuery executes one ad-hoc SELECT against the imported database and
// prints the httpapi.QueryResult document — byte-identical to the
// server's POST /api/query response for the same statement, which the
// CI smoke diffs. Arguments after the SQL bind positionally to `?`
// placeholders: each parses as JSON (42, 4.5, true, null, "text"), and
// anything that is not valid JSON binds as a plain string.
func runQuery(dbPath string, workers int, args []string) error {
	if dbPath == "" {
		return fmt.Errorf("query needs -db (a database produced by nvdimport)")
	}
	if len(args) < 1 {
		return fmt.Errorf("usage: osdiv -db file query \"SELECT ...\" [arg ...]")
	}
	sql := args[0]
	stmt, err := relstore.Parse(sql)
	if err != nil {
		return err
	}
	if _, ok := stmt.(*relstore.SelectStmt); !ok {
		return fmt.Errorf("only SELECT statements are served; data and schema changes go through nvdimport")
	}
	jsonArgs := make([]any, 0, len(args)-1)
	for _, raw := range args[1:] {
		dec := json.NewDecoder(strings.NewReader(raw))
		dec.UseNumber()
		var v any
		if err := dec.Decode(&v); err != nil || dec.More() {
			v = raw // not JSON: bind as text
		}
		jsonArgs = append(jsonArgs, v)
	}
	vals, err := server.QueryArgsFromJSON(jsonArgs)
	if err != nil {
		return err
	}
	db, err := vulndb.Open(dbPath)
	if err != nil {
		return err
	}
	db.SetParallelism(workers)
	res, err := db.Store().Query(sql, vals...)
	if err != nil {
		return err
	}
	body, err := httpapi.Marshal(server.BuildQueryResult(res))
	if err != nil {
		return err
	}
	_, err = os.Stdout.Write(body)
	return err
}

// runRecommend searches OS assignments and rotation schedules for an
// intrusion-tolerant replica group and prints the httpapi.Recommend
// document — byte-identical to the server's POST /api/recommend
// response for the same spec, which the CI smoke diffs.
func runRecommend(a *osdiversity.Analysis, args []string) error {
	fs := flag.NewFlagSet("recommend", flag.ExitOnError)
	universe := fs.String("universe", "", "comma-separated candidate OS names (default: the eight history-eligible distributions)")
	f := fs.Int("f", 0, "fault threshold (3f+1 replicas per window; default 1)")
	windows := fs.Int("windows", 0, "temporal rotation windows (default 2)")
	from := fs.Int("from", 0, "first disclosure year considered (default: corpus low)")
	to := fs.Int("to", 0, "last disclosure year considered (default: corpus high)")
	interval := fs.Float64("interval", 0, "rotation cadence in attack-model time units (default 2)")
	trials := fs.Int("trials", 0, "Monte Carlo trials per candidate schedule (default 200)")
	seed := fs.Uint64("seed", 0, "root seed of the deterministic trial streams (default 1)")
	beam := fs.Int("beam", 0, "assignments kept per window before crossing (default 4)")
	top := fs.Int("top", 0, "candidate schedules reported (default 3)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	req := httpapi.RecommendRequest{
		F: *f, Windows: *windows, FromYear: *from, ToYear: *to,
		Interval: *interval, Trials: *trials, Seed: *seed, Beam: *beam, Top: *top,
	}
	if *universe != "" {
		req.Universe = strings.Split(*universe, ",")
	}
	canon, err := server.CanonRecommend(a, req)
	if err != nil {
		return err
	}
	doc, err := server.BuildRecommend(a, canon)
	if err != nil {
		return err
	}
	body, err := httpapi.Marshal(doc)
	if err != nil {
		return err
	}
	_, err = os.Stdout.Write(body)
	return err
}

type loadConfig struct {
	db        string
	feeds     string
	workers   int
	engine    string
	stream    bool
	synthetic int
	distros   int
	seed      uint64
	snapshot  string
	shard     string // "i/N" year-range slice (serve -shard)
}

func loadAnalysis(cfg loadConfig) (*osdiversity.Analysis, error) {
	opts := []osdiversity.Option{osdiversity.WithParallelism(cfg.workers)}
	if cfg.shard != "" {
		i, n, err := parseShardSpec(cfg.shard)
		if err != nil {
			return nil, err
		}
		opts = append(opts, osdiversity.WithYearShard(i, n))
	}
	switch cfg.engine {
	case "bitset", "":
	case "scan":
		opts = append(opts, osdiversity.WithEngine(osdiversity.EngineScan))
	default:
		return nil, fmt.Errorf("unknown engine %q (want bitset or scan)", cfg.engine)
	}
	if cfg.stream && cfg.feeds == "" {
		return nil, fmt.Errorf("-stream needs -feeds (the streaming pipeline ingests XML feeds)")
	}
	if cfg.snapshot != "" && (cfg.db != "" || cfg.feeds != "" || cfg.synthetic > 0) {
		return nil, fmt.Errorf("-snapshot is a complete corpus; it cannot combine with -db, -feeds or -synthetic")
	}
	switch {
	case cfg.snapshot != "":
		return osdiversity.LoadSnapshot(cfg.snapshot, opts...)
	case cfg.synthetic > 0:
		return osdiversity.LoadSynthetic(osdiversity.SyntheticSpec{
			Entries: cfg.synthetic, Distros: cfg.distros, Seed: cfg.seed,
		}, opts...)
	case cfg.db != "":
		return osdiversity.LoadDatabase(cfg.db, opts...)
	case cfg.feeds != "":
		matches, err := filepath.Glob(filepath.Join(cfg.feeds, "*.xml*"))
		if err != nil || len(matches) == 0 {
			return nil, fmt.Errorf("no feeds found in %s", cfg.feeds)
		}
		if cfg.stream {
			return osdiversity.StreamFeeds(matches, opts...)
		}
		return osdiversity.LoadFeeds(matches, opts...)
	default:
		return osdiversity.LoadCalibrated(opts...)
	}
}

func runTables(a *osdiversity.Analysis, cfg loadConfig, args []string) error {
	fs := flag.NewFlagSet("tables", flag.ExitOnError)
	which := fs.Int("t", 0, "table number (1-6); 0 prints all")
	asJSON := fs.Bool("json", false, "emit the httpapi wire documents (the bytes `osdiv serve` answers)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *asJSON {
		return runTablesJSON(a, cfg, *which)
	}
	printed := false
	show := func(n int) bool { return *which == 0 || *which == n }
	if show(1) {
		printTable1(a)
		printed = true
	}
	if show(2) {
		printTable2(a)
		printed = true
	}
	if show(3) {
		printTable3(a)
		printed = true
	}
	if show(4) {
		printTable4(a)
		printed = true
	}
	if show(5) {
		printTable5(a)
		printed = true
	}
	if show(6) {
		return runReleases(a)
	}
	if !printed {
		return fmt.Errorf("unknown table %d", *which)
	}
	return nil
}

// runTablesJSON prints tables as httpapi wire documents, one JSON line
// per table, byte-identical to the server's /api/tableN responses. The
// all-tables form leads with the corpus provenance document (the
// /corpus bytes: source, engine, epoch, snapshot digest).
func runTablesJSON(a *osdiversity.Analysis, cfg loadConfig, which int) error {
	builders := map[int]func() (any, error){
		1: func() (any, error) { return server.BuildTable1(a), nil },
		2: func() (any, error) { return server.BuildTable2(a), nil },
		3: func() (any, error) { return server.BuildTable3(a), nil },
		4: func() (any, error) { return server.BuildTable4(a), nil },
		// The split year canonicalizes exactly as the server's cache-key
		// layer does, so the printed bytes match /api/table5 on any corpus.
		5: func() (any, error) {
			return server.BuildTable5(a, server.CanonSplitYear(a, server.DefaultSplitYear)), nil
		},
		6: func() (any, error) { return server.BuildReleases(a) },
	}
	emit := func(n int) error {
		doc, err := builders[n]()
		if err != nil {
			return err
		}
		b, err := httpapi.Marshal(doc)
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(b)
		return err
	}
	if which != 0 {
		if _, ok := builders[which]; !ok {
			return fmt.Errorf("unknown table %d", which)
		}
		return emit(which)
	}
	engine := cfg.engine
	if engine == "" {
		engine = "bitset"
	}
	// A one-shot CLI render is always generation 1 with no reload
	// history, exactly like a freshly booted server.
	corpus := server.BuildCorpus(a, sourceName(cfg), engine, a.Parallelism(), "", cfg.db != "",
		server.EpochStatus{Epoch: 1}, nil)
	b, err := httpapi.Marshal(corpus)
	if err != nil {
		return err
	}
	if _, err := os.Stdout.Write(b); err != nil {
		return err
	}
	for n := 1; n <= 6; n++ {
		if err := emit(n); err != nil {
			return err
		}
	}
	return nil
}

func printTable1(a *osdiversity.Analysis) {
	rows, distinct := a.ValidityTable()
	t := report.NewTable("Table I — distribution of OS vulnerabilities in NVD",
		"OS", "Valid", "Unknown", "Unspecified", "Disputed")
	for _, r := range rows {
		t.AddRowValues(r.OS, r.Valid, r.Unknown, r.Unspecified, r.Disputed)
	}
	t.AddRowValues(distinct.OS, distinct.Valid, distinct.Unknown, distinct.Unspecified, distinct.Disputed)
	t.WriteASCII(os.Stdout)
	fmt.Println()
}

func printTable2(a *osdiversity.Analysis) {
	rows, shares := a.ClassTable()
	t := report.NewTable("Table II — vulnerabilities per OS component class",
		"OS", "Driver", "Kernel", "Sys. Soft.", "App.", "Total")
	for _, r := range rows {
		t.AddRowValues(r.OS, r.Driver, r.Kernel, r.SysSoft, r.App,
			r.Driver+r.Kernel+r.SysSoft+r.App)
	}
	t.AddRow("% of distinct",
		fmt.Sprintf("%.1f%%", shares[0]), fmt.Sprintf("%.1f%%", shares[1]),
		fmt.Sprintf("%.1f%%", shares[2]), fmt.Sprintf("%.1f%%", shares[3]), "")
	t.WriteASCII(os.Stdout)
	fmt.Println()
}

func printTable3(a *osdiversity.Analysis) {
	t := report.NewTable("Table III — shared vulnerabilities per OS pair (All / NoApp / NoApp+NoLocal)",
		"Pair", "v(A)", "v(B)", "v(AB)", "v(A)'", "v(B)'", "v(AB)'", "v(A)''", "v(B)''", "v(AB)''")
	for _, row := range a.PairwiseOverlaps() {
		t.AddRowValues(row.A+"-"+row.B,
			row.TotalA[0], row.TotalB[0], row.All,
			row.TotalA[1], row.TotalB[1], row.NoApp,
			row.TotalA[2], row.TotalB[2], row.Remote)
	}
	t.WriteASCII(os.Stdout)
	fmt.Printf("\naverage Fat->IsolatedThin reduction: %.0f%%\n\n", a.FilterReduction())
}

func printTable4(a *osdiversity.Analysis) {
	t := report.NewTable("Table IV — common vulnerabilities on Isolated Thin Servers by part",
		"Pair", "Driver", "Kernel", "Sys. Soft.", "Total")
	for _, row := range a.PartBreakdowns() {
		t.AddRowValues(row.A+"-"+row.B, row.Driver, row.Kernel, row.SysSoft, row.Total)
	}
	t.WriteASCII(os.Stdout)
	fmt.Println()
}

func printTable5(a *osdiversity.Analysis) {
	t := report.NewTable("Table V — history (1994-2005) vs observed (2006-2010), Isolated Thin Servers",
		"Pair", "History", "Observed")
	for _, cell := range a.HistoryObserved(2005) {
		t.AddRowValues(cell.A+"-"+cell.B, cell.History, cell.Observed)
	}
	t.WriteASCII(os.Stdout)
	fmt.Println()
}

func runFigures(a *osdiversity.Analysis, args []string) error {
	fs := flag.NewFlagSet("figures", flag.ExitOnError)
	which := fs.Int("f", 0, "figure number (2 or 3); 0 prints both")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *which == 0 || *which == 2 {
		if err := printFigure2(a); err != nil {
			return err
		}
	}
	if *which == 0 || *which == 3 {
		printFigure3(a)
	}
	if *which != 0 && *which != 2 && *which != 3 {
		return fmt.Errorf("unknown figure %d", *which)
	}
	return nil
}

func printFigure2(a *osdiversity.Analysis) error {
	families := map[string][]string{
		"Solaris family": {"Solaris", "OpenSolaris"},
		"BSD family":     {"FreeBSD", "NetBSD", "OpenBSD"},
		"Windows family": {"Windows2008", "Windows2003", "Windows2000"},
		"Linux family":   {"Debian", "Ubuntu", "RedHat"},
	}
	order := []string{"Solaris family", "BSD family", "Windows family", "Linux family"}
	for _, fam := range order {
		ys := report.NewYearSeries("Figure 2 — " + fam)
		for _, osName := range families[fam] {
			series, err := a.TemporalSeries(osName)
			if err != nil {
				return err
			}
			ys.Add(osName, series)
		}
		ys.Write(os.Stdout)
		fmt.Println()
	}
	return nil
}

func printFigure3(a *osdiversity.Analysis) {
	configs := []struct {
		name    string
		members []string
	}{
		{"Debian", []string{"Debian"}},
		{"Set1", []string{"Windows2003", "Solaris", "Debian", "OpenBSD"}},
		{"Set2", []string{"Windows2003", "Solaris", "Debian", "NetBSD"}},
		{"Set3", []string{"Windows2003", "Solaris", "RedHat", "NetBSD"}},
		{"Set4", []string{"OpenBSD", "NetBSD", "Debian", "RedHat"}},
	}
	hist := report.NewBarChart("Figure 3 — configurations, history period (1994-2005)")
	obs := report.NewBarChart("Figure 3 — configurations, observed period (2006-2010)")
	for _, cfg := range configs {
		h, o, err := a.EvaluateConfiguration(cfg.members, 2005)
		if err != nil {
			continue
		}
		hist.Add(cfg.name, float64(h))
		obs.Add(cfg.name, float64(o))
	}
	hist.Write(os.Stdout)
	fmt.Println()
	obs.Write(os.Stdout)
	fmt.Println()
}

func runKWise(a *osdiversity.Analysis) error {
	kwise := a.KWiseProducts()
	var ks []int
	for k := range kwise {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	t := report.NewTable("k-wise overlap — distinct vulnerabilities affecting >= k OS products",
		"k", "vulnerabilities")
	for _, k := range ks {
		if k >= 3 {
			t.AddRowValues(k, kwise[k])
		}
	}
	t.WriteASCII(os.Stdout)
	fmt.Printf("\nmost shared: %s\n", strings.Join(a.MostShared(3), ", "))
	return nil
}

func runSelect(a *osdiversity.Analysis, args []string) error {
	fs := flag.NewFlagSet("select", flag.ExitOnError)
	k := fs.Int("k", 4, "replica set size")
	onePerFamily := fs.Bool("one-per-family", false, "draw at most one OS per family")
	top := fs.Int("top", 10, "show the best N sets")
	toYear := fs.Int("to", 2005, "selection window end year (history period)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ranked := a.SelectReplicaSets(*k, *onePerFamily, *toYear)
	if len(ranked) > *top {
		ranked = ranked[:*top]
	}
	t := report.NewTable(fmt.Sprintf("replica sets of size %d ranked by shared vulnerabilities through %d", *k, *toYear),
		"Rank", "Members", "Shared")
	for i, r := range ranked {
		t.AddRowValues(i+1, strings.Join(r.Members, ", "), r.Cost)
	}
	return t.WriteASCII(os.Stdout)
}

func runReleases(a *osdiversity.Analysis) error {
	// The grid lives in server.BuildReleases so the ASCII table, the
	// -json document and the /api/releases response share one source.
	doc, err := server.BuildReleases(a)
	if err != nil {
		return err
	}
	t := report.NewTable("Table VI — common vulnerabilities between OS releases (Isolated Thin Server)",
		"Releases", "Total")
	for _, c := range doc.Cells {
		t.AddRowValues(c.A+c.VA+"-"+c.B+c.VB, c.Shared)
	}
	t.WriteASCII(os.Stdout)
	fmt.Println()
	return nil
}

func runSimulate(a *osdiversity.Analysis, args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ExitOnError)
	trials := fs.Int("trials", 200, "Monte Carlo trials per configuration")
	f := fs.Int("f", 1, "fault threshold (3f+1 replicas)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	configs := []struct {
		name    string
		members []string
	}{
		{"homogeneous Debian", repeat("Debian", 3**f+1)},
		{"homogeneous Windows2000", repeat("Windows2000", 3**f+1)},
		{"Set1 (diverse)", []string{"Windows2003", "Solaris", "Debian", "OpenBSD"}},
		{"Set4 (budget diverse)", []string{"OpenBSD", "NetBSD", "Debian", "RedHat"}},
		{"Windows-only (worst diverse)", []string{"Windows2000", "Windows2003", "Windows2008", "Solaris"}},
	}
	t := report.NewTable(fmt.Sprintf("attack simulation (f=%d, %d trials): sequential exploit campaigns", *f, *trials),
		"Configuration", "MeanTTC", "MedianTTC", "SharedFatal", "Unbroken")
	for _, cfg := range configs {
		if len(cfg.members) != 3**f+1 {
			continue
		}
		sum, err := a.SimulateAttack(cfg.name, cfg.members, *f, *trials)
		if err != nil {
			return err
		}
		t.AddRow(cfg.name,
			fmt.Sprintf("%.3f", sum.MeanTTC), fmt.Sprintf("%.3f", sum.MedianTTC),
			fmt.Sprintf("%.2f", sum.SharedFatal), fmt.Sprint(sum.Unbroken))
	}
	if err := t.WriteASCII(os.Stdout); err != nil {
		return err
	}
	gain, err := a.DiversityGain("Debian", []string{"Windows2003", "Solaris", "Debian", "OpenBSD"}, 1, *trials)
	if err != nil {
		return err
	}
	fmt.Printf("\ndiversity gain (Set1 vs homogeneous Debian): %.2fx mean time-to-compromise\n", gain)
	return nil
}

func repeat(s string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = s
	}
	return out
}
