package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"osdiversity/internal/gather"
	"osdiversity/internal/httpapi"
)

// gatewayOptions are the flags of the gateway subcommand.
type gatewayOptions struct {
	addr         string
	backends     []string
	timeout      time.Duration
	retries      int
	maxInFlight  int
	cacheLimit   int
	maxQueueWait time.Duration
	revalidate   time.Duration
	drainTimeout time.Duration
}

// parseGatewayFlags parses the gateway subcommand's flags. Errors come
// back to the caller (and the tests) instead of exiting.
func parseGatewayFlags(args []string) (gatewayOptions, error) {
	fs := flag.NewFlagSet("gateway", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: osdiv gateway -backends url1,url2,... [options]")
		fs.SetOutput(os.Stderr)
		fs.PrintDefaults()
		fs.SetOutput(io.Discard)
	}
	opts := gatewayOptions{}
	var backends string
	fs.StringVar(&opts.addr, "addr", "127.0.0.1:8090", "listen address")
	fs.StringVar(&backends, "backends", "",
		"comma-separated shard base URLs in shard order (http://host:port,...)")
	fs.DurationVar(&opts.timeout, "timeout", 30*time.Second,
		"per-backend request attempt timeout")
	fs.IntVar(&opts.retries, "retries", 3,
		"per-backend GET attempts on transient failures (connection refused/reset, timeouts, 503)")
	fs.IntVar(&opts.maxInFlight, "max-inflight", 0,
		"bound on concurrently executing merged computations (0 = 2x backend count)")
	fs.IntVar(&opts.cacheLimit, "cache-limit", 0,
		"bound on merged-response cache entries (0 = 1024)")
	fs.DurationVar(&opts.maxQueueWait, "max-queue-wait", 5*time.Second,
		"how long a query may wait for a compute slot before 503 + Retry-After")
	fs.DurationVar(&opts.revalidate, "revalidate", 100*time.Millisecond,
		"how long a resolved shard epoch vector stays fresh before the next /readyz probe (negative = probe every request)")
	fs.DurationVar(&opts.drainTimeout, "drain", 10*time.Second,
		"graceful shutdown deadline after SIGTERM/SIGINT")
	if err := fs.Parse(args); err != nil {
		return gatewayOptions{}, fmt.Errorf("gateway: %w", err)
	}
	if fs.NArg() > 0 {
		return gatewayOptions{}, fmt.Errorf("gateway: unexpected argument %q", fs.Arg(0))
	}
	if opts.addr == "" {
		return gatewayOptions{}, errors.New("gateway: -addr must not be empty")
	}
	for _, b := range strings.Split(backends, ",") {
		b = strings.TrimSpace(b)
		if b == "" {
			continue
		}
		if !strings.HasPrefix(b, "http://") && !strings.HasPrefix(b, "https://") {
			return gatewayOptions{}, fmt.Errorf("gateway: backend %q is not an http(s) URL", b)
		}
		opts.backends = append(opts.backends, strings.TrimRight(b, "/"))
	}
	if len(opts.backends) == 0 {
		return gatewayOptions{}, errors.New("gateway: -backends must list at least one shard URL")
	}
	if opts.retries < 1 {
		return gatewayOptions{}, fmt.Errorf("gateway: -retries %d must be >= 1", opts.retries)
	}
	if opts.maxInFlight < 0 {
		return gatewayOptions{}, fmt.Errorf("gateway: -max-inflight %d must be >= 0", opts.maxInFlight)
	}
	if opts.maxQueueWait <= 0 {
		return gatewayOptions{}, fmt.Errorf("gateway: -max-queue-wait %s must be > 0", opts.maxQueueWait)
	}
	return opts, nil
}

// runGateway starts the scatter-gather front-end over the configured
// shard backends. The gateway holds no corpus: it answers as soon as
// the listener is up, and /readyz aggregates the backends' readiness.
// Blocks until SIGTERM/SIGINT, then drains in-flight requests.
func runGateway(args []string) error {
	opts, err := parseGatewayFlags(args)
	if errors.Is(err, flag.ErrHelp) {
		return nil // usage already printed
	}
	if err != nil {
		return err
	}

	gw, err := gather.New(gather.Config{
		Backends:        opts.backends,
		Timeout:         opts.timeout,
		Retry:           httpapi.RetryPolicy{Attempts: opts.retries},
		MaxInFlight:     opts.maxInFlight,
		CacheLimit:      opts.cacheLimit,
		MaxQueueWait:    opts.maxQueueWait,
		RevalidateAfter: opts.revalidate,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", opts.addr)
	if err != nil {
		return err
	}
	hs := &http.Server{
		Handler:           gw.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	log.Printf("gateway on http://%s scattering to %d backends: %s",
		ln.Addr(), len(opts.backends), strings.Join(opts.backends, ", "))

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop()
	log.Printf("signal received, draining (deadline %s)", opts.drainTimeout)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), opts.drainTimeout)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	log.Print("drained, bye")
	return nil
}
