package main

import (
	"strings"
	"testing"
	"time"
)

func TestParseShardSpec(t *testing.T) {
	good := []struct {
		spec string
		i, n int
	}{
		{"1/1", 1, 1}, {"1/2", 1, 2}, {"2/2", 2, 2}, {"7/16", 7, 16},
	}
	for _, c := range good {
		i, n, err := parseShardSpec(c.spec)
		if err != nil || i != c.i || n != c.n {
			t.Errorf("parseShardSpec(%q) = %d, %d, %v; want %d, %d", c.spec, i, n, err, c.i, c.n)
		}
	}
	for _, spec := range []string{"", "1", "a/b", "1/", "/2", "0/2", "3/2", "-1/2", "1/0"} {
		if _, _, err := parseShardSpec(spec); err == nil {
			t.Errorf("parseShardSpec(%q) accepted", spec)
		}
	}
}

func TestParseGatewayFlags(t *testing.T) {
	opts, err := parseGatewayFlags([]string{
		"-backends", " http://a:1 ,http://b:2/, ,", "-retries", "2", "-revalidate", "-1ns",
	})
	if err != nil {
		t.Fatalf("parseGatewayFlags: %v", err)
	}
	if len(opts.backends) != 2 || opts.backends[0] != "http://a:1" || opts.backends[1] != "http://b:2" {
		t.Errorf("backends = %q (whitespace and trailing slash must normalize)", opts.backends)
	}
	if opts.retries != 2 || opts.revalidate >= 0 {
		t.Errorf("retries = %d, revalidate = %s", opts.retries, opts.revalidate)
	}
	if opts.addr != "127.0.0.1:8090" || opts.timeout != 30*time.Second || opts.maxQueueWait != 5*time.Second {
		t.Errorf("defaults = %q, %s, %s", opts.addr, opts.timeout, opts.maxQueueWait)
	}

	bad := []struct {
		args []string
		want string
	}{
		{[]string{}, "-backends"},
		{[]string{"-backends", "a:1"}, "http(s)"},
		{[]string{"-backends", "http://a:1", "extra"}, "unexpected argument"},
		{[]string{"-backends", "http://a:1", "-retries", "0"}, "-retries"},
		{[]string{"-backends", "http://a:1", "-max-inflight", "-1"}, "-max-inflight"},
		{[]string{"-backends", "http://a:1", "-max-queue-wait", "0s"}, "-max-queue-wait"},
	}
	for _, c := range bad {
		if _, err := parseGatewayFlags(c.args); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("parseGatewayFlags(%v) = %v, want error naming %q", c.args, err, c.want)
		}
	}
}
