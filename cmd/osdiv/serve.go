package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"syscall"
	"time"

	"osdiversity"
	"osdiversity/internal/classify"
	"osdiversity/internal/corpus"
	"osdiversity/internal/epoch"
	"osdiversity/internal/server"
	"osdiversity/internal/vulndb"
)

// serveOptions are the flags of the serve subcommand.
type serveOptions struct {
	addr          string
	maxInFlight   int
	drainTimeout  time.Duration
	watch         string
	watchInterval time.Duration
	tee           string
	maxQueueWait  time.Duration
	shard         string
}

// parseShardSpec parses a -shard "i/N" spec: which of N deterministic
// year-range slices this backend owns, 1-based.
func parseShardSpec(spec string) (i, n int, err error) {
	if _, err := fmt.Sscanf(spec, "%d/%d", &i, &n); err != nil {
		return 0, 0, fmt.Errorf("serve: -shard %q is not i/N", spec)
	}
	if n < 1 || i < 1 || i > n {
		return 0, 0, fmt.Errorf("serve: -shard %q needs 1 <= i <= N", spec)
	}
	return i, n, nil
}

// parseServeFlags parses the serve subcommand's flags. Errors come back
// to the caller (and the tests) instead of exiting.
func parseServeFlags(args []string) (serveOptions, error) {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: osdiv [-db file | -feeds dir | -synthetic n] [-workers n] serve [options]")
		fs.SetOutput(os.Stderr)
		fs.PrintDefaults()
		fs.SetOutput(io.Discard)
	}
	opts := serveOptions{}
	fs.StringVar(&opts.addr, "addr", "127.0.0.1:8080", "listen address")
	fs.IntVar(&opts.maxInFlight, "max-inflight", 0,
		"bound on concurrently executing query computations (0 = worker count)")
	fs.DurationVar(&opts.drainTimeout, "drain", 10*time.Second,
		"graceful shutdown deadline after SIGTERM/SIGINT")
	fs.StringVar(&opts.watch, "watch", "",
		"delta feed directory: its *.xml* files hot-reload the corpus on SIGHUP, POST /admin/reload, or the poll below")
	fs.DurationVar(&opts.watchInterval, "watch-interval", 10*time.Second,
		"poll period for -watch directory changes (0 disables polling; SIGHUP and /admin/reload still work)")
	fs.StringVar(&opts.tee, "tee", "",
		"tee every successfully reloaded epoch to this snapshot file (default: the -snapshot boot path, if any)")
	fs.DurationVar(&opts.maxQueueWait, "max-queue-wait", 5*time.Second,
		"how long a query may wait for a compute slot before 503 + Retry-After")
	fs.StringVar(&opts.shard, "shard", "",
		"serve shard i/N: own the i-th of N deterministic year-range corpus slices (behind an osdiv gateway)")
	if err := fs.Parse(args); err != nil {
		return serveOptions{}, fmt.Errorf("serve: %w", err)
	}
	if fs.NArg() > 0 {
		return serveOptions{}, fmt.Errorf("serve: unexpected argument %q", fs.Arg(0))
	}
	if opts.addr == "" {
		return serveOptions{}, errors.New("serve: -addr must not be empty")
	}
	if opts.maxInFlight < 0 {
		return serveOptions{}, fmt.Errorf("serve: -max-inflight %d must be >= 0", opts.maxInFlight)
	}
	if opts.watchInterval < 0 {
		return serveOptions{}, fmt.Errorf("serve: -watch-interval %s must be >= 0", opts.watchInterval)
	}
	if opts.maxQueueWait <= 0 {
		return serveOptions{}, fmt.Errorf("serve: -max-queue-wait %s must be > 0", opts.maxQueueWait)
	}
	if opts.tee != "" && opts.watch == "" {
		return serveOptions{}, errors.New("serve: -tee needs -watch (it snapshots reloaded epochs)")
	}
	if opts.shard != "" {
		if _, _, err := parseShardSpec(opts.shard); err != nil {
			return serveOptions{}, err
		}
		if opts.watch != "" {
			return serveOptions{}, errors.New("serve: -shard cannot combine with -watch (shards reload by restarting; the gateway tracks epochs per shard)")
		}
	}
	return opts, nil
}

// buildShardDB builds the in-memory database a sharded SQL backend
// serves: the source file's entries, sliced by the same deterministic
// year-range split the analysis shard uses, re-imported into a fresh
// store. Dimension tables seed identically in every shard database, so
// the gateway can merge /api/sqltable3 matrices per index; fact rows
// are the shard's slice only, so concatenated /api/query row sets
// reproduce the full table scan.
func buildShardDB(dbPath, spec string) (*vulndb.DB, error) {
	i, n, err := parseShardSpec(spec)
	if err != nil {
		return nil, err
	}
	src, err := vulndb.Open(dbPath)
	if err != nil {
		return nil, err
	}
	entries, err := src.Entries()
	if err != nil {
		return nil, err
	}
	slice := corpus.ShardByYear(entries, i-1, n)
	db, err := vulndb.Create()
	if err != nil {
		return nil, err
	}
	if _, _, err := db.LoadEntries(slice, classify.NewClassifier()); err != nil {
		return nil, err
	}
	return db, nil
}

// sourceName describes the loaded corpus for the /corpus endpoint.
func sourceName(cfg loadConfig) string {
	switch {
	case cfg.snapshot != "":
		return "snapshot:" + cfg.snapshot
	case cfg.synthetic > 0:
		return fmt.Sprintf("synthetic:%d", cfg.synthetic)
	case cfg.db != "":
		return "db:" + cfg.db
	case cfg.feeds != "":
		return "feeds:" + cfg.feeds
	default:
		return "calibrated"
	}
}

// globDeltaFeeds lists the reloadable feed files under the watch
// directory, sorted for a deterministic apply order.
func globDeltaFeeds(dir string) ([]string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.xml*"))
	if err != nil {
		return nil, err
	}
	sort.Strings(matches)
	return matches, nil
}

// watchFingerprint summarizes the watch directory's reloadable content
// (name, size, mtime per feed file) so the poller only triggers builds
// when something actually changed. Computed before a reload starts and
// remembered only after it succeeds: a failed reload stays "dirty" and
// is retried — with a fresh failure count on /corpus — every tick.
func watchFingerprint(dir string) (string, error) {
	paths, err := globDeltaFeeds(dir)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for _, p := range paths {
		st, err := os.Stat(p)
		if err != nil {
			// A feed vanishing mid-scan (partial rsync) reads as a
			// different fingerprint next tick; skip it for now.
			continue
		}
		fmt.Fprintf(&b, "%s|%d|%d\n", p, st.Size(), st.ModTime().UnixNano())
	}
	return b.String(), nil
}

// runServe starts the resident query server, loading the boot corpus in
// the background (the listener and /healthz come up immediately;
// /readyz flips once the corpus is resident). With -watch it hot-
// reloads delta feeds on SIGHUP, POST /admin/reload, and a directory
// poll, degrading to the previous epoch on any failure. Blocks until
// SIGTERM/SIGINT, then drains in-flight requests.
func runServe(cfg loadConfig, args []string) error {
	opts, err := parseServeFlags(args)
	if errors.Is(err, flag.ErrHelp) {
		return nil // usage already printed
	}
	if err != nil {
		return err
	}
	if opts.shard != "" {
		// The slice is taken over materialized entries; the streaming
		// pipeline and snapshot boots never materialize them.
		if cfg.stream {
			return errors.New("serve: -shard cannot combine with -stream (sharding needs materialized entries)")
		}
		if cfg.snapshot != "" {
			return errors.New("serve: -shard cannot combine with -snapshot (shard from feeds or a database)")
		}
		cfg.shard = opts.shard
	}
	engine := cfg.engine
	if engine == "" {
		engine = "bitset"
	}
	workers := cfg.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0) // mirrors WithParallelism(0)
	}
	teePath := opts.tee
	if teePath == "" {
		// Booting from a snapshot and reloading deltas over it would
		// leave the file stale; keep it current by default.
		teePath = cfg.snapshot
	}

	mgr := epoch.NewManager(epoch.Config{Logf: log.Printf})
	srvCfg := server.Config{
		Source:       sourceName(cfg),
		Engine:       engine,
		Workers:      workers,
		DBPath:       cfg.db,
		MaxInFlight:  opts.maxInFlight,
		MaxQueueWait: opts.maxQueueWait,
		Shard:        opts.shard,
	}
	if opts.shard != "" && cfg.db != "" {
		// A sharded SQL backend must answer /api/query and /api/sqltable3
		// over its slice only; the full file would leak other shards'
		// rows, so a fresh in-memory database over the sliced entries is
		// injected instead of opening DBPath lazily.
		srvCfg.DBPath = ""
	}
	srv := server.NewResident(mgr, srvCfg)

	// reloadOnce is the single trigger all three reload paths share:
	// glob the watch directory, then stream its feeds through ApplyDelta
	// against whatever epoch is current, teeing the merged snapshot when
	// configured. An empty directory is not a failure — there is simply
	// nothing to do yet.
	reloadOnce := func() (*epoch.Epoch, error) {
		deltas, err := globDeltaFeeds(opts.watch)
		if err != nil {
			return nil, err
		}
		if len(deltas) == 0 {
			return nil, epoch.ErrNoDelta
		}
		return mgr.TryReload("delta:"+opts.watch, func(cur *osdiversity.Analysis) (*osdiversity.Analysis, error) {
			dopts := []osdiversity.Option{}
			if teePath != "" {
				dopts = append(dopts, osdiversity.WithSnapshot(teePath))
			}
			return cur.ApplyDelta(deltas, dopts...)
		})
	}
	if opts.watch != "" {
		srv.SetReloader(reloadOnce)
	}

	ln, err := net.Listen("tcp", opts.addr)
	if err != nil {
		return err
	}
	hs := &http.Server{
		Handler: srv.Handler(),
		// A resident server must not let half-open or stalled
		// connections pin goroutines and descriptors forever. The
		// write budget is generous because /api/mostshared streams
		// multi-MB bodies to legitimate slow readers.
		ReadHeaderTimeout: 10 * time.Second,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Boot corpus loads off the serving path: probes answer immediately,
	// queries answer 503 not_ready until the first epoch installs.
	bootc := make(chan error, 1)
	go func() {
		a, err := loadAnalysis(cfg)
		if err != nil {
			bootc <- fmt.Errorf("boot load: %w", err)
			return
		}
		if opts.shard != "" && cfg.db != "" {
			db, err := buildShardDB(cfg.db, opts.shard)
			if err != nil {
				bootc <- fmt.Errorf("boot shard db: %w", err)
				return
			}
			srv.SetDatabase(db) // before Install: readiness gates on the epoch
		}
		ep := mgr.Install(a, sourceName(cfg))
		log.Printf("corpus resident: epoch=%d source=%s valid=%d shard=%q",
			ep.Seq, ep.Source, a.ValidCount(), opts.shard)
	}()

	if opts.watch != "" {
		// SIGHUP: the operator's reload trigger.
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for {
				select {
				case <-ctx.Done():
					signal.Stop(hup)
					return
				case <-hup:
					if _, err := reloadOnce(); err != nil {
						log.Printf("SIGHUP reload: %v", err)
					}
				}
			}
		}()

		// Directory poll: pick up delta feeds without operator action.
		if opts.watchInterval > 0 {
			go func() {
				tick := time.NewTicker(opts.watchInterval)
				defer tick.Stop()
				var applied string
				for {
					select {
					case <-ctx.Done():
						return
					case <-tick.C:
					}
					fp, err := watchFingerprint(opts.watch)
					if err != nil {
						log.Printf("watch %s: %v", opts.watch, err)
						continue
					}
					if fp == applied || fp == "" {
						continue
					}
					switch _, err := reloadOnce(); {
					case err == nil:
						applied = fp
					case errors.Is(err, epoch.ErrReloadInProgress):
						// Another trigger is mid-reload; re-evaluate next tick.
					default:
						log.Printf("watch reload: %v", err)
					}
				}
			}()
		}
	}

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	log.Printf("serving %s on http://%s (workers=%d engine=%s watch=%q)",
		sourceName(cfg), ln.Addr(), workers, engine, opts.watch)

	select {
	case err := <-errc:
		return err
	case err := <-bootc: // only ever carries a failed boot
		hs.Close()
		return err
	case <-ctx.Done():
	}
	stop()
	log.Printf("signal received, draining (deadline %s)", opts.drainTimeout)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), opts.drainTimeout)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	log.Print("drained, bye")
	return nil
}
