package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"osdiversity"
	"osdiversity/internal/server"
)

// serveOptions are the flags of the serve subcommand.
type serveOptions struct {
	addr         string
	maxInFlight  int
	drainTimeout time.Duration
}

// parseServeFlags parses the serve subcommand's flags. Errors come back
// to the caller (and the tests) instead of exiting.
func parseServeFlags(args []string) (serveOptions, error) {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: osdiv [-db file | -feeds dir | -synthetic n] [-workers n] serve [options]")
		fs.SetOutput(os.Stderr)
		fs.PrintDefaults()
		fs.SetOutput(io.Discard)
	}
	opts := serveOptions{}
	fs.StringVar(&opts.addr, "addr", "127.0.0.1:8080", "listen address")
	fs.IntVar(&opts.maxInFlight, "max-inflight", 0,
		"bound on concurrently executing query computations (0 = worker count)")
	fs.DurationVar(&opts.drainTimeout, "drain", 10*time.Second,
		"graceful shutdown deadline after SIGTERM/SIGINT")
	if err := fs.Parse(args); err != nil {
		return serveOptions{}, fmt.Errorf("serve: %w", err)
	}
	if fs.NArg() > 0 {
		return serveOptions{}, fmt.Errorf("serve: unexpected argument %q", fs.Arg(0))
	}
	if opts.addr == "" {
		return serveOptions{}, errors.New("serve: -addr must not be empty")
	}
	if opts.maxInFlight < 0 {
		return serveOptions{}, fmt.Errorf("serve: -max-inflight %d must be >= 0", opts.maxInFlight)
	}
	return opts, nil
}

// sourceName describes the loaded corpus for the /corpus endpoint.
func sourceName(cfg loadConfig) string {
	switch {
	case cfg.snapshot != "":
		return "snapshot:" + cfg.snapshot
	case cfg.synthetic > 0:
		return fmt.Sprintf("synthetic:%d", cfg.synthetic)
	case cfg.db != "":
		return "db:" + cfg.db
	case cfg.feeds != "":
		return "feeds:" + cfg.feeds
	default:
		return "calibrated"
	}
}

// runServe starts the resident query server over the loaded analysis
// and blocks until SIGTERM/SIGINT, then drains in-flight requests.
func runServe(a *osdiversity.Analysis, cfg loadConfig, args []string) error {
	opts, err := parseServeFlags(args)
	if errors.Is(err, flag.ErrHelp) {
		return nil // usage already printed
	}
	if err != nil {
		return err
	}
	engine := cfg.engine
	if engine == "" {
		engine = "bitset"
	}
	srv := server.New(a, server.Config{
		Source:      sourceName(cfg),
		Engine:      engine,
		Workers:     a.Parallelism(),
		DBPath:      cfg.db,
		MaxInFlight: opts.maxInFlight,
	})
	ln, err := net.Listen("tcp", opts.addr)
	if err != nil {
		return err
	}
	hs := &http.Server{
		Handler: srv.Handler(),
		// A resident server must not let half-open or stalled
		// connections pin goroutines and descriptors forever. The
		// write budget is generous because /api/mostshared streams
		// multi-MB bodies to legitimate slow readers.
		ReadHeaderTimeout: 10 * time.Second,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	log.Printf("serving %s on http://%s (workers=%d engine=%s)",
		sourceName(cfg), ln.Addr(), a.Parallelism(), engine)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop()
	log.Printf("signal received, draining (deadline %s)", opts.drainTimeout)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), opts.drainTimeout)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	log.Print("drained, bye")
	return nil
}
