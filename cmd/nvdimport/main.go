// Command nvdimport parses NVD XML data feeds and loads them into the
// study's SQL database (the paper's Figure 1 schema on the embedded
// relational store), persisting the result for later analysis.
//
// Usage:
//
//	nvdimport -db study.db feeds/nvdcve-2.0-*.xml.gz
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"osdiversity"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("nvdimport: ")
	db := flag.String("db", "study.db", "path of the database file to write")
	workers := flag.Int("workers", 1, "worker count for decoding and ingestion (0 = all CPUs)")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: nvdimport [-db study.db] [-workers n] feed.xml[.gz]...")
		os.Exit(2)
	}

	stored, skipped, err := osdiversity.ImportFeeds(*db, flag.Args(), osdiversity.WithParallelism(*workers))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("imported %d entries (%d skipped: no clustered OS product) into %s\n",
		stored, skipped, *db)
}
