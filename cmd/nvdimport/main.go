// Command nvdimport parses NVD XML data feeds and loads them into the
// study's SQL database (the paper's Figure 1 schema on the embedded
// relational store), persisting the result for later analysis.
//
// Usage:
//
//	nvdimport -db study.db feeds/nvdcve-2.0-*.xml.gz
//
// With -stream the feeds flow through the bounded streaming pipeline
// straight into the store (constant ingestion memory, byte-identical
// database). With -lenient malformed entries are skipped and counted
// instead of failing the import; the count is printed so nothing is
// silently lost. With -table3 the import finishes by running the
// grouped pairwise SQL query (the paper's Table III v(AB) matrix)
// against the freshly written database, as a smoke test of the SQL
// path. With -snapshot the digested study is also persisted as a
// columnar snapshot file, the warm-start input of `osdiv -snapshot`.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"osdiversity"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("nvdimport: ")
	db := flag.String("db", "study.db", "path of the database file to write")
	workers := flag.Int("workers", 1, "worker count for decoding, ingestion and SQL probes (0 = all CPUs)")
	stream := flag.Bool("stream", false, "ingest through the bounded streaming pipeline (constant memory)")
	lenient := flag.Bool("lenient", false, "skip and count malformed feed entries instead of failing")
	table3 := flag.Bool("table3", false, "after importing, print the Table III pairwise matrix via the SQL engine")
	snapPath := flag.String("snapshot", "", "also persist the digested study as a columnar snapshot here")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: nvdimport [-db study.db] [-workers n] [-stream] [-lenient] [-table3] [-snapshot study.osds] feed.xml[.gz]...")
		os.Exit(2)
	}

	var stats osdiversity.FeedStats
	opts := []osdiversity.Option{
		osdiversity.WithParallelism(*workers),
		osdiversity.WithFeedStats(&stats),
	}
	if *lenient {
		opts = append(opts, osdiversity.WithLenient())
	}
	if *snapPath != "" {
		opts = append(opts, osdiversity.WithSnapshot(*snapPath))
	}
	importFeeds := osdiversity.ImportFeeds
	if *stream {
		importFeeds = osdiversity.ImportFeedsStream
	}
	stored, skipped, err := importFeeds(*db, flag.Args(), opts...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("imported %d entries (%d skipped: no clustered OS product, %d malformed entries dropped) into %s\n",
		stored, skipped, stats.MalformedSkipped, *db)
	if *snapPath != "" {
		fmt.Fprintf(os.Stderr, "wrote snapshot %s\n", *snapPath)
	}

	if *table3 {
		cells, err := osdiversity.SQLPairwiseShared(*db, osdiversity.WithParallelism(*workers))
		if err != nil {
			log.Fatal(err)
		}
		for _, c := range cells {
			fmt.Printf("%s-%s\t%d\n", c.A, c.B, c.Shared)
		}
	}
}
