// Command nvdgen writes the calibrated synthetic NVD data feeds — one
// gzip-compressed XML file per publication year, in the NVD 2.0 schema —
// that stand in for the 2010 snapshot the paper mined.
//
// Usage:
//
//	nvdgen -out feeds/
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"osdiversity"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("nvdgen: ")
	out := flag.String("out", "feeds", "output directory for the XML feeds")
	workers := flag.Int("workers", 1, "worker count for rendering and writing (0 = all CPUs)")
	flag.Parse()
	if flag.NArg() != 0 {
		flag.Usage()
		os.Exit(2)
	}

	paths, err := osdiversity.GenerateFeeds(*out, osdiversity.WithParallelism(*workers))
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range paths {
		fmt.Println(p)
	}
	fmt.Fprintf(os.Stderr, "wrote %d feeds to %s\n", len(paths), *out)
}
