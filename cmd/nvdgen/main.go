// Command nvdgen writes synthetic NVD data feeds — one gzip-compressed
// XML file per publication year, in the NVD 2.0 schema.
//
// By default it writes the calibrated corpus that stands in for the 2010
// snapshot the paper mined. With -synthetic it instead writes the
// seeded "modern NVD" corpus: a deterministic population of -entries
// vulnerabilities over a -distros-wide universe, for exercising the
// analysis engines at production volume.
//
// Usage:
//
//	nvdgen -out feeds/
//	nvdgen -out feeds/ -synthetic -entries 100000 -distros 32 -seed 1
//
// With -snapshot the written feeds are immediately digested through the
// streaming pipeline and persisted as a columnar snapshot, so `osdiv
// -snapshot` can warm-start without re-parsing the XML.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"osdiversity"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("nvdgen: ")
	out := flag.String("out", "feeds", "output directory for the XML feeds")
	workers := flag.Int("workers", 1, "worker count for rendering and writing (0 = all CPUs)")
	synthetic := flag.Bool("synthetic", false, "write the seeded synthetic modern-NVD corpus instead of the calibrated one")
	entries := flag.Int("entries", 100_000, "synthetic corpus size (with -synthetic)")
	distros := flag.Int("distros", 32, "synthetic universe width (with -synthetic)")
	seed := flag.Uint64("seed", 1, "synthetic corpus seed (with -synthetic)")
	fromYear := flag.Int("from", 2002, "first synthetic publication year (with -synthetic)")
	toYear := flag.Int("to", 2025, "last synthetic publication year (with -synthetic)")
	snapPath := flag.String("snapshot", "", "also digest the written feeds and persist a columnar snapshot here")
	flag.Parse()
	if flag.NArg() != 0 {
		flag.Usage()
		os.Exit(2)
	}

	opt := osdiversity.WithParallelism(*workers)
	var paths []string
	var err error
	if *synthetic {
		spec := osdiversity.SyntheticSpec{
			Entries: *entries, Distros: *distros, Seed: *seed,
			FromYear: *fromYear, ToYear: *toYear,
		}
		paths, err = osdiversity.GenerateSyntheticFeeds(*out, spec, opt)
	} else {
		paths, err = osdiversity.GenerateFeeds(*out, opt)
	}
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range paths {
		fmt.Println(p)
	}
	fmt.Fprintf(os.Stderr, "wrote %d feeds to %s\n", len(paths), *out)

	if *snapPath != "" {
		sopts := []osdiversity.Option{opt, osdiversity.WithSnapshot(*snapPath)}
		if *synthetic {
			sopts = append(sopts, osdiversity.WithSyntheticUniverse(*distros))
		}
		if _, err := osdiversity.StreamFeeds(paths, sopts...); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote snapshot %s\n", *snapPath)
	}
}
