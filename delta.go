package osdiversity

import (
	"osdiversity/internal/core"
	"osdiversity/internal/cve"
	"osdiversity/internal/nvdfeed"
)

// ApplyDelta derives a new Analysis from this one plus a set of NVD
// delta feed files (plain or .gz, e.g. the "modified"/"recent" feeds) —
// the live-epoch reload path. The delta streams through the bounded
// feed pipeline into an incremental overlay build: entries whose CVE
// identifiers the base already holds replace the old records
// (last-writer-wins, whatever the entry's new validity outcome),
// unknown identifiers append. The base is never mutated and keeps
// answering queries throughout; the returned Analysis shares no mutable
// or mapped memory with it, so a snapshot-booted base can be dropped
// (and its mapping closed) once traffic has drained to the new epoch.
//
// The result is identical — every table, selection and attack answer —
// to a cold build over the merged entry set. Worker count is inherited
// from the base unless WithParallelism overrides it; the engine and
// distro universe always come from the base (WithEngine and
// WithSyntheticUniverse are ignored). WithSnapshot tees the merged
// epoch to disk before returning; a failed tee fails the whole apply.
//
// Delta feeds are parsed strictly by default so a truncated or corrupt
// file aborts the apply (leaving the base untouched); WithLenient +
// WithFeedStats opt into skip-and-count, as in the loaders.
func (a *Analysis) ApplyDelta(paths []string, opts ...Option) (*Analysis, error) {
	// Seed the worker count from the base rather than newConfig's serial
	// default, so a parallel epoch stays parallel across reloads.
	cfg := config{workers: a.study.Parallelism()}
	for _, opt := range opts {
		opt(&cfg)
	}
	skips := &nvdfeed.SkipStats{}
	st := nvdfeed.StreamFiles(paths, cfg.readerOptions(skips)...)
	defer st.Close()
	b := core.NewDeltaBuilder(a.study)
	batch := make([]*cve.Entry, 0, streamBatch)
	for e := range st.Entries() {
		batch = append(batch, e)
		if len(batch) == streamBatch {
			b.Add(batch...)
			batch = batch[:0]
		}
	}
	if err := st.Err(); err != nil {
		return nil, err
	}
	b.Add(batch...)
	cfg.noteSkips(skips)
	merged := b.Finish()
	merged.SetParallelism(cfg.workers)
	return cfg.finishAnalysis(merged, a.source, a.malformedSkipped+skips.Skipped())
}

// SelfCheck deep-validates the analysis's internal consistency — the
// same exhaustive column checks hostile snapshot files are subjected
// to — and warms the query indexes as a side effect. The epoch manager
// runs it on every candidate epoch before swapping it live.
func (a *Analysis) SelfCheck() error { return a.study.SelfCheck() }
