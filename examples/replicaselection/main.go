// Replica selection: the paper's §IV-C experiment as a library user
// would run it — choose the most diverse 4-replica configuration on
// pre-2006 ("history") data, then check how it fares on 2006-2010
// ("observed") data.
package main

import (
	"fmt"
	"log"
	"strings"

	"osdiversity"
)

func main() {
	log.SetFlags(0)

	a, err := osdiversity.LoadCalibrated()
	if err != nil {
		log.Fatal(err)
	}

	const splitYear = 2005

	// The homogeneous baseline: four identical replicas of the OS with
	// the fewest history-period vulnerabilities (Debian, as the paper
	// finds). Every one of its vulnerabilities hits all four replicas.
	hist, obs, err := a.EvaluateConfiguration([]string{"Debian"}, splitYear)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline, 4x Debian:           history %2d   observed %2d\n", hist, obs)

	// Diverse selection, one OS per family (the constraint under which
	// the paper's printed Set1/Set2/Set3 emerge).
	perFamily := a.SelectReplicaSets(4, true, splitYear)
	fmt.Println("\ntop diverse sets (one per family), selected on history data:")
	for i, set := range perFamily[:3] {
		h, o, err := a.EvaluateConfiguration(set.Members, splitYear)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d. %-48s history %2d   observed %2d\n",
			i+1, strings.Join(set.Members, ", "), h, o)
	}

	// Unconstrained search finds one configuration the paper's
	// substitution heuristic misses (two BSDs, cost 12).
	unconstrained := a.SelectReplicaSets(4, false, splitYear)
	fmt.Println("\ntop sets without the family constraint:")
	for i, set := range unconstrained[:3] {
		fmt.Printf("%d. %-48s history %2d\n", i+1, strings.Join(set.Members, ", "), set.Cost)
	}

	fmt.Println("\nthe selected diverse sets share one vulnerability or fewer in the")
	fmt.Println("observed period, versus nine for the homogeneous baseline — the")
	fmt.Println("paper's evidence that history data is a usable selection signal.")
}
