// Quickstart: generate the calibrated synthetic NVD feeds, parse them
// back, and print the headline shared-vulnerability numbers — the
// five-minute tour of the reproduction.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"osdiversity"
)

func main() {
	log.SetFlags(0)

	dir, err := os.MkdirTemp("", "osdiv-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. Write the synthetic NVD data feeds (one XML file per year).
	feeds, err := osdiversity.GenerateFeeds(filepath.Join(dir, "feeds"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d NVD feed files\n", len(feeds))

	// 2. Parse them through the real XML pipeline (decoding feed files
	// concurrently) and analyze on the sharded engine.
	a, err := osdiversity.LoadFeeds(feeds, osdiversity.WithParallelism(0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("analyzed %d valid vulnerabilities (the paper studies 1887)\n\n", a.ValidCount())

	// 3. Three pairs from the paper's Table III: a same-family pair, a
	// cross-family pair, and a pair with no common flaws at all.
	interesting := map[[2]string]bool{
		{"Windows2000", "Windows2003"}: true,
		{"OpenBSD", "Windows2003"}:     true,
		{"NetBSD", "Ubuntu"}:           true,
	}
	fmt.Println("pair                       all  no-app  remote-only")
	for _, row := range a.PairwiseOverlaps() {
		if !interesting[[2]string{row.A, row.B}] {
			continue
		}
		fmt.Printf("%-26s %4d  %6d  %11d\n", row.A+"-"+row.B, row.All, row.NoApp, row.Remote)
	}

	// 4. The paper's punchline: hardening the servers (no applications,
	// remote-only) removes more than half the common vulnerabilities.
	fmt.Printf("\naverage reduction Fat Server -> Isolated Thin Server: %.0f%%\n",
		a.FilterReduction())
}
