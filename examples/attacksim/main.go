// Attack simulation: the reproduction's extension experiment (E12).
// An adversary runs sequential exploit campaigns against the replicas of
// a BFT service; shared vulnerabilities let one campaign take several
// replicas at once. Compare how long homogeneous and diverse
// deployments survive.
package main

import (
	"fmt"
	"log"
)

import "osdiversity"

func main() {
	log.SetFlags(0)

	a, err := osdiversity.LoadCalibrated()
	if err != nil {
		log.Fatal(err)
	}

	const trials = 500
	configs := []struct {
		name    string
		members []string
	}{
		{"4x Debian (homogeneous)", []string{"Debian", "Debian", "Debian", "Debian"}},
		{"Set1: Win2003+Solaris+Debian+OpenBSD", []string{"Windows2003", "Solaris", "Debian", "OpenBSD"}},
		{"Set4: OpenBSD+NetBSD+Debian+RedHat", []string{"OpenBSD", "NetBSD", "Debian", "RedHat"}},
		{"Windows-heavy: 2000+2003+2008+Solaris", []string{"Windows2000", "Windows2003", "Windows2008", "Solaris"}},
	}

	fmt.Printf("%-40s %9s %12s\n", "configuration (f=1, 3f+1=4 replicas)", "mean TTC", "shared-fatal")
	for _, cfg := range configs {
		sum, err := a.SimulateAttack(cfg.name, cfg.members, 1, trials)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-40s %9.3f %11.0f%%\n", cfg.name, sum.MeanTTC, 100*sum.SharedFatal)
	}

	gain, err := a.DiversityGain("Debian", []string{"Windows2003", "Solaris", "Debian", "OpenBSD"}, 1, trials)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSet1 survives %.2fx longer than the homogeneous baseline.\n", gain)
	fmt.Println("shared-fatal = fraction of runs where a single shared-vulnerability")
	fmt.Println("exploit crossed the fault threshold: ~100% homogeneous, rare for Set1.")
}
