// Feed pipeline: the paper's §III methodology end to end — XML feeds on
// disk, streamed through the bounded-channel pipeline into the Figure 1
// SQL schema with constant ingestion memory (feeds larger than RAM
// import the same way), then queried with the embedded SQL engine
// directly. Lenient ingestion counts malformed entries instead of
// silently dropping them.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"osdiversity"
	"osdiversity/internal/vulndb"
)

func main() {
	log.SetFlags(0)

	dir, err := os.MkdirTemp("", "osdiv-pipeline-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	feeds, err := osdiversity.GenerateFeeds(filepath.Join(dir, "feeds"))
	if err != nil {
		log.Fatal(err)
	}

	// Stream the feeds straight into the SQL store: entries flow from
	// the XML tokenizers through bounded channels into chunked inserts,
	// so ingestion memory stays flat no matter how large the feed set
	// grows. The persisted database is byte-identical to the
	// materialized ImportFeeds path.
	dbPath := filepath.Join(dir, "study.db")
	var stats osdiversity.FeedStats
	stored, skipped, err := osdiversity.ImportFeedsStream(dbPath, feeds,
		osdiversity.WithParallelism(0),
		osdiversity.WithLenient(),
		osdiversity.WithFeedStats(&stats))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streamed %d entries into the SQL schema (%d skipped, %d malformed dropped)\n\n",
		stored, skipped, stats.MalformedSkipped)

	// Open the database and run the paper's aggregations as literal SQL
	// on the embedded engine.
	db, err := vulndb.Open(dbPath)
	if err != nil {
		log.Fatal(err)
	}

	res, err := db.Store().Query(`
		SELECT os.family, COUNT(DISTINCT os_vuln.vuln_id) AS n
		FROM os
		JOIN os_vuln ON os.id = os_vuln.os_id
		JOIN security_protection sp ON os_vuln.vuln_id = sp.vuln_id
		WHERE sp.validity = 'Valid'
		GROUP BY os.family
		ORDER BY n DESC`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("valid vulnerabilities per OS family (SQL GROUP BY):")
	for _, row := range res.Rows {
		fmt.Printf("  %-8s %4d\n", row[0].AsText(), row[1].AsInt())
	}

	shared, err := db.SharedCount("Debian", "RedHat")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nvulnerabilities shared by Debian and RedHat (SQL self-join): %d\n", shared)

	res, err = db.Store().Query(`
		SELECT vt.type, COUNT(*) AS n
		FROM vulnerability_type vt
		JOIN security_protection sp ON vt.vuln_id = sp.vuln_id
		WHERE sp.validity = 'Valid'
		GROUP BY vt.type
		ORDER BY n DESC`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndistinct vulnerabilities per component class:")
	for _, row := range res.Rows {
		fmt.Printf("  %-12s %4d\n", row[0].AsText(), row[1].AsInt())
	}

	// The same feeds also stream into the in-memory analysis — the
	// incremental Study builder digests batches as they decode, so the
	// full entry slice never has to exist at once.
	a, err := osdiversity.StreamFeeds(feeds, osdiversity.WithParallelism(0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstreamed analysis: %d valid vulnerabilities across %d OSes\n",
		a.ValidCount(), len(a.OSNames()))
}
