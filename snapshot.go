package osdiversity

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"osdiversity/internal/core"
	"osdiversity/internal/osmap"
	"osdiversity/internal/snapshot"
)

// This file is the facade over internal/snapshot: any loader can tee a
// snapshot to disk with WithSnapshot, an existing Analysis can be
// persisted with SaveSnapshot, and LoadSnapshot warm-starts an Analysis
// from the file without touching a feed. The loaded study adopts the
// file's columns zero-copy (mmap where available), so a 100k-entry boot
// is dominated by one checksum pass instead of XML decode + digestion.

// WithSnapshot makes the analysis loaders (LoadFeeds, StreamFeeds,
// LoadCalibrated, LoadSynthetic, LoadDatabase) and the importers
// (ImportFeeds, ImportFeedsStream) also persist the digested study as a
// snapshot at path, atomically, after a successful load.
func WithSnapshot(path string) Option {
	return func(c *config) { c.snapshot = path }
}

// finishAnalysis stamps provenance onto a freshly built study and, when
// the config asks for one, tees the snapshot to disk — the shared tail
// of every loader.
func (c config) finishAnalysis(st *core.Study, source string, malformed int) (*Analysis, error) {
	a := &Analysis{
		study:            st,
		source:           source,
		epoch:            time.Now(),
		malformedSkipped: malformed,
	}
	if c.snapshot != "" {
		if err := a.SaveSnapshot(c.snapshot); err != nil {
			return nil, err
		}
	}
	return a, nil
}

// SaveSnapshot persists the analysis's columnar state at path (written
// to path+".tmp" and renamed into place). The analysis must run over
// the paper registry or a synthetic universe — the two the loader can
// reconstruct; a custom WithRegistry universe cannot round-trip and is
// refused.
func (a *Analysis) SaveSnapshot(path string) error {
	uni, err := universeDescriptor(a.study.Distros())
	if err != nil {
		return err
	}
	meta := snapshot.Meta{
		Universe:         uni,
		Source:           a.source,
		SavedAtUnix:      a.Epoch().Unix(),
		MalformedSkipped: a.malformedSkipped,
	}
	return snapshot.Save(path, a.study.ExportColumns(), meta)
}

// LoadSnapshot warm-starts the analysis from a snapshot file, read-only.
// The universe is reconstructed from the file's metadata;
// WithParallelism and WithEngine apply as with any loader, and the
// resulting tables are byte-identical to the feed-built originals. The
// file region may stay mapped for the life of the Analysis; Close
// releases it.
func LoadSnapshot(path string, opts ...Option) (*Analysis, error) {
	cfg := newConfig(opts)
	if cfg.sharded() {
		return nil, fmt.Errorf("osdiversity: WithYearShard needs materialized entries; shard from feeds or a database")
	}
	snap, err := snapshot.Open(path)
	if err != nil {
		return nil, err
	}
	reg, err := registryForUniverse(snap.Meta.Universe)
	if err != nil {
		snap.Close()
		return nil, err
	}
	sopts := []core.Option{core.WithParallelism(cfg.workers), core.WithRegistry(reg)}
	if cfg.engine == EngineScan {
		sopts = append(sopts, core.WithEngine(core.EngineScan))
	}
	st, err := core.FromColumns(&snap.Cols, sopts...)
	if err != nil {
		snap.Close()
		return nil, err
	}
	if cfg.feedStats != nil {
		cfg.feedStats.MalformedSkipped = snap.Meta.MalformedSkipped
	}
	return &Analysis{
		study:            st,
		source:           snap.Meta.Source,
		epoch:            time.Unix(snap.Meta.SavedAtUnix, 0),
		snapshotDigest:   snap.Digest,
		malformedSkipped: snap.Meta.MalformedSkipped,
		snap:             snap,
	}, nil
}

// Epoch reports when the analysis's corpus was built: the load time for
// feed-built analyses, the save time recorded in the file for
// snapshot-loaded ones (so every replica booted from one snapshot
// reports the same epoch).
func (a *Analysis) Epoch() time.Time { return a.epoch }

// SnapshotDigest reports the payload digest of the snapshot the
// analysis was booted from ("crc32c:xxxxxxxx"), or "" when it was built
// from a corpus directly.
func (a *Analysis) SnapshotDigest() string { return a.snapshotDigest }

// MalformedSkipped reports how many malformed entries a lenient feed
// load dropped before ingestion (preserved across the snapshot round
// trip).
func (a *Analysis) MalformedSkipped() int { return a.malformedSkipped }

// Close releases the snapshot file mapping backing the analysis, if
// any. Queries must have quiesced; a no-op for feed-built analyses.
func (a *Analysis) Close() error {
	if a.snap == nil {
		return nil
	}
	s := a.snap
	a.snap = nil
	return s.Close()
}

// universeDescriptor names a registry universe so a snapshot reader can
// rebuild it: the paper's 11 distros or a synthetic prefix universe.
func universeDescriptor(ds []osmap.Distro) (string, error) {
	paper := osmap.Distros()
	n := len(ds)
	if n > len(paper)+1024 {
		return "", fmt.Errorf("osdiversity: cannot snapshot a %d-distro custom universe", n)
	}
	for i, d := range ds {
		var want osmap.Distro
		if i < len(paper) {
			want = paper[i]
		} else {
			want = osmap.SyntheticDistro(i - len(paper))
		}
		if d != want {
			return "", fmt.Errorf("osdiversity: cannot snapshot a custom registry universe (distro %d is %v)", i, d)
		}
	}
	if n == len(paper) {
		return "paper", nil
	}
	return fmt.Sprintf("synthetic:%d", n), nil
}

// registryForUniverse inverts universeDescriptor.
func registryForUniverse(uni string) (*osmap.Registry, error) {
	if uni == "paper" {
		return osmap.NewRegistry(), nil
	}
	if rest, ok := strings.CutPrefix(uni, "synthetic:"); ok {
		n, err := strconv.Atoi(rest)
		if err == nil && n >= 2 && n <= 1024 {
			return osmap.NewSyntheticRegistry(n), nil
		}
	}
	return nil, fmt.Errorf("osdiversity: snapshot names unknown universe %q", uni)
}
