package osdiversity

import (
	"path/filepath"
	"testing"
)

var analysisCache *Analysis

func calibrated(t testing.TB) *Analysis {
	t.Helper()
	if analysisCache == nil {
		a, err := LoadCalibrated()
		if err != nil {
			t.Fatalf("LoadCalibrated: %v", err)
		}
		analysisCache = a
	}
	return analysisCache
}

func TestOSNames(t *testing.T) {
	names := OSNames()
	if len(names) != 11 || names[0] != "OpenBSD" || names[10] != "Windows2008" {
		t.Fatalf("OSNames = %v", names)
	}
	fam, err := FamilyOf("Debian")
	if err != nil || fam != "Linux" {
		t.Errorf("FamilyOf(Debian) = %q, %v", fam, err)
	}
	if _, err := FamilyOf("TempleOS"); err == nil {
		t.Error("FamilyOf accepted unknown OS")
	}
}

func TestEndToEndFeedsAndDatabase(t *testing.T) {
	dir := t.TempDir()
	feeds, err := GenerateFeeds(filepath.Join(dir, "feeds"))
	if err != nil {
		t.Fatalf("GenerateFeeds: %v", err)
	}
	if len(feeds) < 14 {
		t.Fatalf("generated %d feed files, expected one per year", len(feeds))
	}
	fromFeeds, err := LoadFeeds(feeds)
	if err != nil {
		t.Fatalf("LoadFeeds: %v", err)
	}
	if fromFeeds.ValidCount() != 1887 {
		t.Errorf("feeds analysis valid = %d, want 1887", fromFeeds.ValidCount())
	}

	dbPath := filepath.Join(dir, "study.db")
	stored, skipped, err := ImportFeeds(dbPath, feeds)
	if err != nil {
		t.Fatalf("ImportFeeds: %v", err)
	}
	if skipped != 0 || stored == 0 {
		t.Errorf("import stored/skipped = %d/%d", stored, skipped)
	}
	fromDB, err := LoadDatabase(dbPath)
	if err != nil {
		t.Fatalf("LoadDatabase: %v", err)
	}
	if fromDB.ValidCount() != 1887 {
		t.Errorf("database analysis valid = %d, want 1887", fromDB.ValidCount())
	}

	// The SQL-path Table III matrix agrees cell-for-cell with the
	// Study's All column over the same database.
	cells, err := SQLPairwiseShared(dbPath, WithParallelism(4))
	if err != nil {
		t.Fatalf("SQLPairwiseShared: %v", err)
	}
	overlaps := fromDB.PairwiseOverlaps()
	if len(cells) != len(overlaps) {
		t.Fatalf("SQL matrix has %d pairs, Study %d", len(cells), len(overlaps))
	}
	for i, cell := range cells {
		row := overlaps[i]
		if cell.A != row.A || cell.B != row.B || cell.Shared != row.All {
			t.Errorf("SQL pair %d = %s-%s %d, Study %s-%s %d",
				i, cell.A, cell.B, cell.Shared, row.A, row.B, row.All)
		}
	}
}

func TestAnalysisTables(t *testing.T) {
	a := calibrated(t)
	rows, distinct := a.ValidityTable()
	if len(rows) != 11 || distinct.Valid != 1887 {
		t.Errorf("validity table: %d rows, distinct %d", len(rows), distinct.Valid)
	}
	classes, shares := a.ClassTable()
	if len(classes) != 11 {
		t.Errorf("class table rows = %d", len(classes))
	}
	var sum float64
	for _, s := range shares {
		sum += s
	}
	if sum < 99.5 || sum > 100.5 {
		t.Errorf("class shares sum = %.1f", sum)
	}
	overlaps := a.PairwiseOverlaps()
	if len(overlaps) != 55 {
		t.Fatalf("pairwise overlaps = %d rows", len(overlaps))
	}
	for _, row := range overlaps {
		if row.A == "Windows2000" && row.B == "Windows2003" {
			if row.All != 253 || row.NoApp != 116 || row.Remote != 81 {
				t.Errorf("W2k-W2k3 = %d/%d/%d, paper 253/116/81", row.All, row.NoApp, row.Remote)
			}
		}
	}
	parts := a.PartBreakdowns()
	if len(parts) != 34 {
		t.Errorf("part rows = %d, paper prints 34", len(parts))
	}
	if parts[0].Total < parts[len(parts)-1].Total {
		t.Error("part rows not sorted descending")
	}
	periods := a.HistoryObserved(2005)
	if len(periods) != 28 {
		t.Errorf("period cells = %d, want 28", len(periods))
	}
}

func TestAnalysisSelectionAndFigures(t *testing.T) {
	a := calibrated(t)
	ranked := a.SelectReplicaSets(4, true, 2005)
	if len(ranked) != 12 || ranked[0].Cost != 10 {
		t.Fatalf("one-per-family ranking: %d sets, best %d", len(ranked), ranked[0].Cost)
	}
	hist, obs, err := a.EvaluateConfiguration([]string{"Windows2003", "Solaris", "Debian", "OpenBSD"}, 2005)
	if err != nil || hist != 10 || obs != 1 {
		t.Errorf("Set1 = %d/%d, %v; want 10/1", hist, obs, err)
	}
	hist, obs, err = a.EvaluateConfiguration([]string{"Debian"}, 2005)
	if err != nil || hist != 16 || obs != 9 {
		t.Errorf("Debian baseline = %d/%d, %v; want 16/9", hist, obs, err)
	}
	if _, _, err := a.EvaluateConfiguration([]string{"HaikuOS"}, 2005); err == nil {
		t.Error("unknown OS accepted")
	}
	series, err := a.TemporalSeries("Solaris")
	if err != nil || len(series) == 0 {
		t.Errorf("TemporalSeries: %v, %d years", err, len(series))
	}
	kwise := a.KWiseProducts()
	if kwise[9] != 1 || kwise[6] != 3 {
		t.Errorf("kwise = %v", kwise)
	}
	top := a.MostShared(1)
	if len(top) != 1 || top[0] != "CVE-2008-4609" {
		t.Errorf("MostShared = %v", top)
	}
	if r := a.FilterReduction(); r < 45 || r > 70 {
		t.Errorf("FilterReduction = %.1f", r)
	}
	n, err := a.ReleaseOverlap("Debian", "4.0", "RedHat", "5.0")
	if err != nil || n != 1 {
		t.Errorf("ReleaseOverlap = %d, %v; want 1", n, err)
	}
}

func TestAnalysisAttack(t *testing.T) {
	a := calibrated(t)
	sum, err := a.SimulateAttack("set1", []string{"Windows2003", "Solaris", "Debian", "OpenBSD"}, 1, 50)
	if err != nil {
		t.Fatalf("SimulateAttack: %v", err)
	}
	if sum.MeanTTC <= 0 {
		t.Errorf("attack summary: %+v", sum)
	}
	gain, err := a.DiversityGain("Debian", []string{"Windows2003", "Solaris", "Debian", "OpenBSD"}, 1, 50)
	if err != nil || gain <= 1.0 {
		t.Errorf("DiversityGain = %.2f, %v", gain, err)
	}
	if _, err := a.SimulateAttack("bad", []string{"Debian"}, 1, 10); err == nil {
		t.Error("short scenario accepted")
	}
}

func TestSyntheticFacade(t *testing.T) {
	spec := SyntheticSpec{Entries: 4000, Distros: 16, Seed: 3}
	a, err := LoadSynthetic(spec, WithParallelism(4))
	if err != nil {
		t.Fatalf("LoadSynthetic: %v", err)
	}
	names := a.OSNames()
	if len(names) != 16 {
		t.Fatalf("universe has %d names, want 16", len(names))
	}
	pairs := a.PairwiseOverlaps()
	if want := 16 * 15 / 2; len(pairs) != want {
		t.Fatalf("PairwiseOverlaps has %d rows, want %d", len(pairs), want)
	}
	if a.ValidCount() == 0 {
		t.Fatal("synthetic analysis has no valid entries")
	}

	// The scan engine must agree with the default bitset engine.
	b, err := LoadSynthetic(spec, WithEngine(EngineScan))
	if err != nil {
		t.Fatalf("LoadSynthetic(scan): %v", err)
	}
	bp := b.PairwiseOverlaps()
	for i := range pairs {
		if pairs[i] != bp[i] {
			t.Fatalf("engines disagree on pair %s-%s: %+v vs %+v",
				pairs[i].A, pairs[i].B, pairs[i], bp[i])
		}
	}
}

func TestSyntheticFeedRoundTrip(t *testing.T) {
	spec := SyntheticSpec{Entries: 1500, Distros: 16, Seed: 9, FromYear: 2010, ToYear: 2014}
	dir := t.TempDir()
	paths, err := GenerateSyntheticFeeds(dir, spec, WithParallelism(2))
	if err != nil {
		t.Fatalf("GenerateSyntheticFeeds: %v", err)
	}
	if len(paths) != 5 {
		t.Fatalf("wrote %d feeds, want 5 (one per year)", len(paths))
	}
	direct, err := LoadSynthetic(spec)
	if err != nil {
		t.Fatal(err)
	}
	reloaded, err := LoadFeeds(paths, WithSyntheticUniverse(spec.Distros), WithParallelism(2))
	if err != nil {
		t.Fatalf("LoadFeeds(synthetic): %v", err)
	}
	if direct.ValidCount() != reloaded.ValidCount() {
		t.Fatalf("valid counts differ: direct %d, reloaded %d", direct.ValidCount(), reloaded.ValidCount())
	}
	dp, rp := direct.PairwiseOverlaps(), reloaded.PairwiseOverlaps()
	for i := range dp {
		if dp[i] != rp[i] {
			t.Fatalf("pair %s-%s differs after XML round trip", dp[i].A, dp[i].B)
		}
	}
}
