module osdiversity

go 1.24
